#include "src/service/measure_service.h"

#include <cstdio>
#include <utility>

#include "src/obs/metrics.h"
#include "src/service/service_errors.h"
#include "src/translate/ground.h"
#include "src/util/timer.h"

namespace mudb::service {

namespace {

/// Short hex prefix of a request signature for span annotations — enough
/// to correlate spans with cache keys, without dumping 128-bit keys.
std::string KeyPrefix(const convex::CanonicalBodyKey& key) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(key.fp.hi >> 32));
  return buf;
}

}  // namespace

MeasureService::MeasureService(const ServiceOptions& options)
    : options_(options),
      pool_(options.pool),
      body_cache_(EstimateCache::Options{options.body_cache_capacity,
                                         options.cache_shards}),
      result_cache_(options.result_cache_capacity, options.cache_shards) {
  // Mirror the result-memo counters into the registry ("service.cache.*";
  // the body cache publishes "service.body_cache.*" from its own ctor).
  result_cache_.PublishMetrics("service.cache");
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(
        util::ThreadPool::ResolveThreadCount(options.num_threads));
    pool_ = owned_pool_.get();
  }
  // mudb-lint: allow(no-raw-thread) -- the documented dispatcher site:
  // one long-lived control thread that only moves requests between
  // queues; all sampling work runs on the util::ThreadPool.
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

MeasureService::~MeasureService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

MeasureService::Ticket MeasureService::Submit(MeasureRequest request) {
  Job job;
  job.request = std::move(request);
  job.ctx = obs::CurrentContext();
  Ticket ticket = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return ticket;
}

void MeasureService::DispatcherLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: every submitted promise is
      // fulfilled before the destructor returns.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Adopt the submitter's context so per-request spans parent under the
    // batch/tier span that submitted them, across the dispatcher hop.
    obs::ScopedContext adopt(job.ctx);
    job.promise.set_value(Process(job.request));
  }
}

util::Status MeasureService::Attribute(util::Status status) const {
  if (status.ok() || options_.shard_id < 0) return status;
  util::Status attributed(
      status.code(), "[shard " + std::to_string(options_.shard_id) + "] " +
                         status.message());
  attributed.WithShard(options_.shard_id);
  return attributed;
}

util::StatusOr<measure::MeasureResult> MeasureService::Process(
    MeasureRequest& request) {
  static obs::Counter* const m_requests =
      obs::MetricsRegistry::Global().counter("service.requests");
  static obs::Counter* const m_steps =
      obs::MetricsRegistry::Global().counter("service.sampling_steps");
  static obs::Counter* const m_samples =
      obs::MetricsRegistry::Global().counter("service.samples");
  static obs::Histogram* const m_request_ms =
      obs::MetricsRegistry::Global().histogram("service.request_ms");

  obs::Span span("service.process");
  const int64_t t0 = obs::Clock::NowNanos();
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests->Inc();

  // Validate the error-model knobs before grounding or memo lookups: a
  // degenerate ε/δ must fail identically on the service and direct paths
  // (byte-identical when unsharded; sharded services stamp their shard id).
  util::Status valid = measure::ValidateMeasureOptions(request.options);
  if (!valid.ok()) return Attribute(std::move(valid));

  // Resolve the formula: ground the query form first (Prop. 5.3).
  const constraints::RealFormula* formula = nullptr;
  translate::GroundResult ground;
  if (request.formula.has_value()) {
    formula = &*request.formula;
  } else {
    if (request.query == nullptr || request.db == nullptr) {
      return Attribute(util::Status::InvalidArgument(
          "MeasureRequest needs a formula or a (query, db, candidate)"));
    }
    translate::GroundOptions gopts;
    gopts.max_atoms = request.options.max_ground_atoms;
    obs::Span ground_span("service.ground");
    util::StatusOr<translate::GroundResult> grounded = translate::GroundQuery(
        *request.query, *request.db, request.candidate, gopts);
    if (!grounded.ok()) return Attribute(grounded.status());
    ground = std::move(grounded).value();
    formula = &ground.formula;
  }

  // Result memo: a repeated request replays its result without sampling.
  // The signature covers everything the result depends on (request_key.h),
  // so a hit is bit-identical to re-execution.
  convex::CanonicalBodyKey signature =
      RequestSignature(*formula, request.options);
  // The memo Lookup itself publishes service.cache.hit / .miss.
  if (std::optional<MemoEntry> memo = result_cache_.Lookup(signature)) {
    total_request_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (span.recording()) {
      span.Annotate("cache", "hit");
      span.Annotate("key_prefix", KeyPrefix(signature));
    }
    m_request_ms->Observe(
        obs::Clock::NanosToMillis(obs::Clock::NowNanos() - t0));
    return memo->result;
  }
  if (span.recording()) {
    span.Annotate("cache", "miss");
    span.Annotate("key_prefix", KeyPrefix(signature));
  }

  // Execute with the service's pool and body cache plugged in (caller
  // overrides win: a request carrying its own pool/cache keeps it).
  measure::MeasureOptions opts = request.options;
  if (opts.pool == nullptr) opts.pool = pool_;
  if (opts.body_cache == nullptr) opts.body_cache = &body_cache_;
  util::StatusOr<measure::MeasureResult> result =
      ComputeNu(*formula, opts);
  if (!result.ok()) {
    // Execution failures name the request (and the shard, when sharded) so
    // one bad request in a batch of dozens is attributable from its status
    // alone: "[req:9f3a6b21 shard 2] <engine message>".
    return AnnotateRequestError(result.status(), signature,
                                options_.shard_id);
  }
  if (result.ok()) {
    total_body_cache_hits_.fetch_add(result->body_cache_hits,
                                     std::memory_order_relaxed);
    total_bodies_.fetch_add(result->bodies, std::memory_order_relaxed);
    total_unique_bodies_.fetch_add(result->unique_bodies,
                                   std::memory_order_relaxed);
    total_sampling_steps_.fetch_add(result->sampling_steps,
                                    std::memory_order_relaxed);
    total_samples_.fetch_add(result->samples, std::memory_order_relaxed);
    m_steps->Inc(result->sampling_steps);
    m_samples->Inc(result->samples);
    result_cache_.Insert(signature, MemoEntry{*result});
  }
  m_request_ms->Observe(
      obs::Clock::NanosToMillis(obs::Clock::NowNanos() - t0));
  return result;
}

MeasureService::BatchOutcome MeasureService::RunBatch(
    std::vector<MeasureRequest> requests) {
  static obs::Histogram* const m_batch_ms =
      obs::MetricsRegistry::Global().histogram("service.batch_ms");
  obs::Span span("service.batch");
  if (span.recording()) {
    span.Annotate("requests", static_cast<double>(requests.size()));
  }
  util::WallTimer timer;
  BatchStats before = lifetime_stats();
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (MeasureRequest& request : requests) {
    tickets.push_back(Submit(std::move(request)));
  }
  BatchOutcome outcome;
  outcome.results.reserve(tickets.size());
  for (Ticket& ticket : tickets) {
    outcome.results.push_back(ticket.get());
  }
  BatchStats after = lifetime_stats();
  outcome.stats.requests = after.requests - before.requests;
  outcome.stats.request_cache_hits =
      after.request_cache_hits - before.request_cache_hits;
  outcome.stats.body_cache_hits =
      after.body_cache_hits - before.body_cache_hits;
  outcome.stats.bodies = after.bodies - before.bodies;
  outcome.stats.unique_bodies = after.unique_bodies - before.unique_bodies;
  outcome.stats.sampling_steps =
      after.sampling_steps - before.sampling_steps;
  outcome.stats.samples = after.samples - before.samples;
  outcome.stats.wall_ms = timer.ElapsedMillis();
  outcome.trace_id = span.context().trace_id;
  if (span.recording()) {
    span.Annotate("cache_hits",
                  static_cast<double>(outcome.stats.request_cache_hits));
    span.Annotate("sampling_steps",
                  static_cast<double>(outcome.stats.sampling_steps));
  }
  m_batch_ms->Observe(outcome.stats.wall_ms);
  return outcome;
}

BatchStats MeasureService::lifetime_stats() const {
  BatchStats s;
  s.requests = total_requests_.load(std::memory_order_relaxed);
  s.request_cache_hits =
      total_request_cache_hits_.load(std::memory_order_relaxed);
  s.body_cache_hits = total_body_cache_hits_.load(std::memory_order_relaxed);
  s.bodies = total_bodies_.load(std::memory_order_relaxed);
  s.unique_bodies = total_unique_bodies_.load(std::memory_order_relaxed);
  s.sampling_steps = total_sampling_steps_.load(std::memory_order_relaxed);
  s.samples = total_samples_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mudb::service
