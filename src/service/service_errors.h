// Shared error formatting for the serving layer.
//
// Batch callers see one Status per request; when dozens of requests fail
// together the message must say *which* request on *which* shard, or the
// failure is unattributable. Every service error path funnels through these
// helpers so the format stays uniform: a short request-signature prefix
// (the stable content address of request_key.h — greppable across runs,
// since the signature is a pure function of the request), the shard id when
// sharded, and the structured util::StatusContext payload for callers that
// want fields instead of strings.

#ifndef MUDB_SRC_SERVICE_SERVICE_ERRORS_H_
#define MUDB_SRC_SERVICE_SERVICE_ERRORS_H_

#include <cstdint>
#include <string>

#include "src/convex/canonical.h"
#include "src/util/status.h"

namespace mudb::service {

/// Short stable prefix of a request signature ("req:9f3a6b21") — enough
/// bits to identify a request in logs without printing all 128.
std::string SignaturePrefix(const convex::CanonicalBodyKey& key);

/// Uniform reference to a session candidate ("candidate 5"), shared by
/// RankingSession's delta validation and grounding error paths.
std::string CandidateRef(uint64_t id);

/// Prepends "[req:<prefix>] " (plus " shard N" when shard_id >= 0) to the
/// status message and attaches the structured context payload. OK statuses
/// pass through untouched; re-annotation is idempotent per field (the
/// prefix is only added once per annotate call — callers annotate at the
/// boundary where the context is known, not at every frame).
util::Status AnnotateRequestError(util::Status status,
                                  const convex::CanonicalBodyKey& signature,
                                  int shard_id = -1, int attempts = 0);

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_SERVICE_ERRORS_H_
