// ShardedMeasureService: fault-tolerant sharded serving, in-process.
//
// One MeasureService is single-node. The caches underneath it are already
// content-addressed (128-bit canonical/raw keys) — the hard part of
// sharding — so this layer adds the *protocol*: a router that partitions
// requests across N shard workers by canonical request signature, a shard
// transport seam with deterministic fault injection (shard_transport.h,
// fault_injector.h), a retry policy (capped exponential backoff with
// deterministic jitter from the request's RNG substream, util/backoff.h),
// per-request deadlines (util/deadline.h), and graceful degradation when a
// shard keeps failing. Everything runs in-process on purpose: the protocol
// is proven correct and bit-deterministic here before any real networking
// exists, and a network transport later slots into the same seam.
//
// Routing: shard = signature mod N, where the signature is the canonical
// content key of (grounded formula, options) from request_key.h. Routing by
// content (never by arrival order or a round-robin counter) means a
// repeated request always lands on the shard that already memoized it, and
// the assignment is a pure function of the request.
//
// Failure handling, layered by the retryable-vs-permanent taxonomy
// (util/status.h):
//   * permanent errors (invalid options, malformed request, infeasible
//     engine input) return immediately — retrying identical content cannot
//     help;
//   * transient errors (kUnavailable from the transport, kResourceExhausted,
//     kAborted) are retried up to RetryPolicy::max_attempts with capped
//     exponential backoff; the jitter stream is a pure function of the
//     request seed, so a request's delay schedule is reproducible;
//   * the per-request deadline is checked between attempts; expiry returns
//     kDeadlineExceeded (never a hang — Wait always completes);
//   * when retries are exhausted and the deadline still has budget, the
//     router degrades instead of failing: re-execute locally
//     (kLocalRecompute) or serve a coarser-ε interval (kCoarsenEpsilon,
//     ε scaled by `coarsen_factor`). Degraded responses are stamped
//     (ShardedResponse::degraded / degraded_epsilon) so callers can tell.
//
// Determinism contract (the fabric corollary): every request that
// ultimately succeeds returns a result that is a bitwise-pure function of
// its cache key — independent of which shard computed it, how many retries
// occurred, and what fault schedule ran. Non-degraded and kLocalRecompute
// responses are bit-identical to the unsharded MeasureService; a
// kCoarsenEpsilon response is bit-identical to the unsharded service
// evaluating the same request at the stamped coarser ε. The chaos test
// (sharded_service_test.cc) hard-asserts this across randomized fault
// schedules × thread counts × shard counts.
//
// Error attribution: terminal failures carry the request-signature prefix,
// the shard id, and the attempt count — in the message and in the
// structured util::StatusContext payload (service_errors.h).

#ifndef MUDB_SRC_SERVICE_SHARDED_SERVICE_H_
#define MUDB_SRC_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/convex/canonical.h"
#include "src/measure/measure.h"
#include "src/obs/trace.h"
#include "src/service/fault_injector.h"
#include "src/service/measure_service.h"
#include "src/service/shard_transport.h"
#include "src/util/backoff.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace mudb::service {

/// Retry knobs for transient delivery failures.
struct RetryPolicy {
  /// Total delivery attempts per request (first try included). 1 = never
  /// retry.
  int max_attempts = 4;
  /// Backoff between attempts (capped exponential, deterministic jitter).
  util::BackoffPolicy backoff;
};

/// What the router serves when a shard keeps failing but the deadline still
/// has budget.
enum class DegradeMode {
  /// No fallback: exhausted retries surface the last transient error.
  kNone,
  /// Re-execute the request locally in the router, full precision. Bitwise
  /// the unsharded result; costs router CPU (no shard cache reuse).
  kLocalRecompute,
  /// Re-execute locally at ε · coarsen_factor: a cheaper, wider interval —
  /// the "serve a coarser answer instead of queueing" overload story. The
  /// served ε is stamped in ShardedResponse::degraded_epsilon.
  kCoarsenEpsilon,
};

struct ShardedServiceOptions {
  /// Shard worker count (>= 1).
  int num_shards = 4;
  /// Options for every shard worker (thread count, cache sizing). The
  /// router overrides shard_id per worker; results are bit-identical for
  /// any num_threads by the underlying contract.
  ServiceOptions shard_options;
  /// Router worker threads driving shard calls (0 = 2 · num_shards,
  /// clamped to [1, 16]). Bounds in-flight requests; never affects result
  /// bits.
  int router_threads = 0;
  RetryPolicy retry;
  /// Default per-request deadline in ms (0 = none). Submit overloads can
  /// set a per-request deadline explicitly.
  double default_deadline_ms = 0.0;
  DegradeMode degrade = DegradeMode::kLocalRecompute;
  /// ε multiplier for DegradeMode::kCoarsenEpsilon (> 1; the result is
  /// clamped to ε <= 1).
  double coarsen_factor = 2.0;
  /// When set, every delivery goes through a FaultInjectingTransport with
  /// this schedule (chaos testing / benches). Unset = clean transport.
  std::optional<FaultInjectorOptions> faults;
};

/// One routed result plus its delivery metadata.
struct ShardedResponse {
  measure::MeasureResult result;
  /// Shard that produced the result; -1 when degradation computed it
  /// locally in the router.
  int shard = -1;
  /// Delivery attempts consumed (1 = first try succeeded).
  int attempts = 1;
  /// True when the response was served by degradation after retries were
  /// exhausted; `result` is then the local (possibly coarser-ε) evaluation.
  bool degraded = false;
  /// The coarsened ε served under kCoarsenEpsilon (0 otherwise).
  double degraded_epsilon = 0.0;
  /// Flight-recorder handle: trace id of this request's span tree when
  /// tracing was enabled (obs::CollectTrace fetches it), 0 otherwise.
  /// Delivery metadata only — never part of `result`.
  uint64_t trace_id = 0;
};

/// Router accounting. Snapshot via stats(); all counters are lifetime
/// totals (RunBatch reports the per-batch delta).
struct ShardedStats {
  int64_t requests = 0;
  /// Transport calls issued (>= requests; retries add calls).
  int64_t attempts = 0;
  /// Attempts beyond each request's first.
  int64_t retries = 0;
  /// Retryable failures observed from the transport.
  int64_t transient_failures = 0;
  /// Responses served via degradation.
  int64_t degraded = 0;
  /// Terminal non-OK responses.
  int64_t failures = 0;
  /// Requests that terminated with kDeadlineExceeded.
  int64_t deadline_expired = 0;
  /// Requests routed to each shard (index = shard id).
  std::vector<int64_t> per_shard_requests;
  /// Wall time of the batch (RunBatch only).
  double wall_ms = 0.0;
};

class ShardedMeasureService {
 public:
  using Ticket = std::future<util::StatusOr<ShardedResponse>>;

  /// Builds num_shards in-process MeasureService workers and the transport
  /// stack (fault-injecting when options.faults is set). `transport`, when
  /// given, replaces the built-in stack (testing seam; borrowed, must
  /// outlive the service, and its num_shards() must match).
  explicit ShardedMeasureService(const ShardedServiceOptions& options = {},
                                 ShardTransport* transport = nullptr);
  /// Drains outstanding requests, then joins the router workers.
  ~ShardedMeasureService();

  ShardedMeasureService(const ShardedMeasureService&) = delete;
  ShardedMeasureService& operator=(const ShardedMeasureService&) = delete;

  /// Enqueues one request under the default deadline; returns immediately.
  /// Thread-safe.
  Ticket Submit(MeasureRequest request);
  /// Same, with an explicit per-request deadline.
  Ticket Submit(MeasureRequest request, util::Deadline deadline);

  /// Blocks until `ticket`'s request completes. Never hangs on expiry: a
  /// request whose deadline passes resolves to kDeadlineExceeded.
  static util::StatusOr<ShardedResponse> Wait(Ticket& ticket) {
    return ticket.get();
  }

  /// Submits every request, waits for all, reports the stats delta.
  /// Results are positionally aligned with `requests`.
  struct BatchOutcome {
    std::vector<util::StatusOr<ShardedResponse>> results;
    ShardedStats stats;
  };
  BatchOutcome RunBatch(std::vector<MeasureRequest> requests);

  /// The shard a signature routes to: fp.hi mod num_shards (pure function
  /// of the content key; exposed for tests and benches).
  int ShardFor(const convex::CanonicalBodyKey& signature) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard workers (cache introspection in tests; do not submit to
  /// them directly while the router is running).
  MeasureService& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  /// The owned injector when options.faults was set (nullptr otherwise);
  /// tests use it for targeted FailNext / SetDown control.
  FaultInjector* fault_injector() { return injector_.get(); }

  ShardedStats stats() const;

 private:
  struct Job {
    MeasureRequest request;
    util::Deadline deadline;
    std::promise<util::StatusOr<ShardedResponse>> promise;
    /// Submitter's span context, adopted by the router worker.
    obs::SpanContext ctx;
  };

  void RouterLoop();
  util::StatusOr<ShardedResponse> Execute(Job& job);
  util::StatusOr<ShardedResponse> Degrade(
      const MeasureRequest& request,
      const convex::CanonicalBodyKey& signature, int shard, int attempts,
      util::Status last_error, const util::Deadline& deadline);

  ShardedServiceOptions options_;
  std::vector<std::unique_ptr<MeasureService>> shards_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<InProcessShardTransport> in_process_;
  std::unique_ptr<FaultInjectingTransport> faulty_;
  ShardTransport* transport_;  // the top of the stack (or the external one)

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;  // guarded by mu_
  bool stop_ = false;      // guarded by mu_

  std::atomic<int64_t> total_requests_{0};
  std::atomic<int64_t> total_attempts_{0};
  std::atomic<int64_t> total_retries_{0};
  std::atomic<int64_t> total_transient_failures_{0};
  std::atomic<int64_t> total_degraded_{0};
  std::atomic<int64_t> total_failures_{0};
  std::atomic<int64_t> total_deadline_expired_{0};
  std::unique_ptr<std::atomic<int64_t>[]> per_shard_requests_;

  // mudb-lint: allow(no-raw-thread) -- documented router storage; router
  // workers only route/retry requests, results stay bit-identical for any
  // router_threads (sharded_service_test chaos matrix).
  std::vector<std::thread> routers_;  // last: started after everything above
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_SHARDED_SERVICE_H_
