// RankingService: adaptive-precision top-k certainty ranking.
//
// The paper's measure of certainty exists to *compare* candidate answers —
// "which tuples are most certain?" — yet evaluating all N candidates at the
// caller's final ε wastes nearly every sampling step on candidates that were
// never going to make the cut. The scheduler instead walks an ε-ladder
// (coarse → fine, default 0.2 → 0.1 → 0.05 → each request's own ε): at every
// tier each surviving candidate is measured once through the MeasureService,
// its estimate carries the engine's confidence interval (multiplicative
// [est/(1+ε_t), est/(1−ε_t)] for the FPRAS, additive est ± ε_t for the
// AFPRAS family, a point for exact engines — MeasureResult::ci_lo/ci_hi),
// and every candidate whose upper bound falls strictly below the k-th
// largest lower bound is pruned; only the survivors pay for the next, finer
// tier. Tiers reuse the service's caches: repeated candidates hit the
// request memo and shared geometry hits the body cache within each tier.
//
// δ accounting: the ladder performs at most N·T estimates (T = ladder tiers
// + the final tier), so every estimate runs at δ_t = δ_total / (N·T)
// (RankingTierDelta). By the union bound, over the δ-consuming engines (the
// AFPRAS family, whose Hoeffding sample count grows with ln(1/δ)) all
// intervals hold simultaneously with probability >= 1 − δ_total, and then
// every pruned candidate's true ν really is below k other candidates' true
// ν — no true top-k candidate (up to final-ε resolution: candidates whose
// true values the final intervals cannot separate are interchangeable) is
// ever pruned. The FPRAS has no δ knob — ε controls its interval's width,
// not its constant success probability (Thm 7.1) — so for kFpras candidates
// each interval holds with that per-estimate probability and the pruning
// guarantee is per-estimate, not union-bounded. Note interval soundness
// bounds TRUE values: exact agreement with a fixed-precision full batch
// (which ranks by noisy final-ε estimates) additionally needs the workload's
// estimates to separate the sets, as bench_ranking's deterministic
// wide-spread workload does.
//
// Determinism contract: the returned ranking is a pure function of the
// candidate list and options. Each tier is one MeasureService batch — bit-
// deterministic per request for any thread count, submission order, and
// cache state — and the pruning decision reads only the tier-t estimates,
// in candidate index order, with ties broken by input index; timing never
// enters. Corollary: permuting the input permutes the outcome by exactly
// that permutation. ranking_test.cc locks this in across num_threads ∈
// {1, 2, 8} and shuffled candidate orders.

#ifndef MUDB_SRC_SERVICE_RANKING_SERVICE_H_
#define MUDB_SRC_SERVICE_RANKING_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/util/status.h"

namespace mudb::service {

struct RankingOptions {
  /// How many most-certain candidates to return.
  int k = 1;
  /// Coarse-to-fine ε tiers walked before the final tier (each request's
  /// own options.epsilon). Values must lie in (0, 1] and strictly
  /// decrease; a tier at or below a request's own ε runs that candidate at
  /// its final precision and finishes it early. In adaptive mode only the
  /// first entry is used (the coarsest tier); later tiers are chosen from
  /// the observed estimates.
  std::vector<double> ladder = {0.2, 0.1, 0.05};
  /// Total failure budget for the whole ranking decision, split across the
  /// at most N·T estimates via the union bound (RankingTierDelta; T is the
  /// ladder length + 1, or max_tiers in adaptive mode). Each request's own
  /// options.delta is overridden by the split.
  double delta = 0.05;
  /// When nonzero (must lie in (0, 1)): every tier request runs at exactly
  /// this δ instead of the δ/(N·T) split. The caller owns the union-bound
  /// arithmetic — the point of the knob is that request signatures then no
  /// longer depend on N, so a RankingSession keeps its warm estimates
  /// across inserts and removals (with the default split, any change to N
  /// re-budgets every estimate and invalidates everything).
  double per_estimate_delta = 0.0;
  /// Adaptive ladder: instead of walking the fixed `ladder`, tier 0 runs at
  /// ladder.front() and every later ε is chosen from the tier-t estimates
  /// alone — survivor counts and the interval gaps around the k-th value,
  /// under the steps ∝ 1/ε² cost model (tier_stats records the measured
  /// per-tier costs the model abstracts). Once the active set is down to k
  /// (the top-k set is separated), or an intermediate tier can no longer
  /// prune more than it costs, the schedule jumps straight to the final
  /// tier. Purely a schedule change: outcomes remain deterministic, and the
  /// survivors' final evaluations are the same bit-identical requests.
  bool adaptive_ladder = false;
  /// Adaptive mode's tier budget for the δ split (total tiers including the
  /// coarsest and the final; the schedule never exceeds it). Must be >= 2.
  int max_tiers = 6;
  /// Route intermediate tiers between engines, deterministically from the
  /// tier-t estimates alone: a kFpras candidate (linear grounding, so the
  /// AFPRAS applies too) whose estimate sits far from the running k-th
  /// value — farther than the next tier's ε — and above the additive
  /// floor runs its next intermediate tier on the cheap additive AFPRAS;
  /// near the cut it keeps the multiplicative FPRAS, whose interval width
  /// scales with the value. Final tiers always run the request's own
  /// method, so routing never changes what a survivor reports.
  bool route_engines = false;
};

/// Validates k, δ, the ladder, and the adaptive knobs. Exposed because both
/// the one-shot scheduler and RankingSession enforce it.
util::Status ValidateRankingOptions(const RankingOptions& options);

/// The per-estimate δ every tier request runs at: per_estimate_delta when
/// set, else δ / (N·T) with T = ladder tiers + 1 (max_tiers in adaptive
/// mode). Exposed so benches and tests can construct fixed-precision
/// baselines whose final-tier requests are bit-identical to the ladder's.
double RankingTierDelta(const RankingOptions& options, size_t num_candidates);

/// Per-candidate outcome, in input order.
struct RankedCandidate {
  /// Position in the input candidate list.
  size_t index = 0;
  /// The candidate's freshest evaluation — final-precision unless pruned:
  /// value, [ci_lo, ci_hi], engine accounting, with MeasureResult::tier
  /// stamped to the ladder tier it ran at (0 = coarsest).
  measure::MeasureResult result;
  /// True when the candidate was eliminated before reaching its final ε:
  /// its upper bound fell below the k-th largest lower bound.
  bool pruned = false;
};

struct RankingOutcome {
  /// The top-k candidate indices, most certain first (sorted by final
  /// estimate, ties broken by input index). Size min(k, N).
  std::vector<size_t> top_k;
  /// Per-candidate detail, positionally aligned with the input.
  std::vector<RankedCandidate> candidates;
  /// One MeasureService batch per executed tier — the per-tier accounting
  /// (requests, cache hits, sampling steps, wall time).
  std::vector<BatchStats> tier_stats;
  /// Σ over tier_stats: the hit-and-run steps the adaptive schedule paid
  /// (compare against fixed-precision full-batch ranking — bench_ranking).
  int64_t total_sampling_steps = 0;
  /// Flight-recorder handle: trace id of this ranking's span tree when
  /// tracing was enabled (obs::CollectTrace fetches it), 0 otherwise.
  uint64_t trace_id = 0;
};

/// The ε-ladder scheduler on top of a MeasureService. Stateless besides the
/// borrowed service (not owned); one RankTopK call at a time per service,
/// as with RunBatch. Implemented as a one-shot RankingSession
/// (ranking_session.h): callers that re-rank as the database mutates or
/// candidates stream in should hold a session instead — Rerank(delta)
/// reuses every estimate whose content signature survived the delta.
class RankingService {
 public:
  explicit RankingService(MeasureService* service) : service_(service) {}

  /// Ranks the candidates and returns the top-k most certain. Fails with
  /// InvalidArgument on malformed options (k < 1, non-decreasing ladder,
  /// ε/δ outside their ranges — every candidate's MeasureOptions is
  /// validated up front) and propagates the first failing candidate's
  /// status (lowest input index) if a request errors.
  util::StatusOr<RankingOutcome> RankTopK(
      std::vector<MeasureRequest> candidates,
      const RankingOptions& options = {});

 private:
  MeasureService* service_;
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_RANKING_SERVICE_H_
