#include "src/service/ranking_service.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "src/measure/measure.h"

namespace mudb::service {

namespace {

util::Status ValidateRankingOptions(const RankingOptions& options) {
  if (options.k < 1) {
    return util::Status::InvalidArgument("ranking k must be >= 1");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("ranking delta must be in (0, 1)");
  }
  double prev = 2.0;
  for (double eps : options.ladder) {
    if (!(eps > 0) || !(eps <= 1)) {
      return util::Status::InvalidArgument(
          "ladder epsilons must lie in (0, 1]");
    }
    if (!(eps < prev)) {
      return util::Status::InvalidArgument(
          "ladder epsilons must strictly decrease");
    }
    prev = eps;
  }
  return util::Status::OK();
}

}  // namespace

double RankingTierDelta(const RankingOptions& options, size_t num_candidates) {
  size_t tiers = options.ladder.size() + 1;
  size_t n = num_candidates > 0 ? num_candidates : 1;
  return options.delta /
         (static_cast<double>(tiers) * static_cast<double>(n));
}

util::StatusOr<RankingOutcome> RankingService::RankTopK(
    std::vector<MeasureRequest> candidates, const RankingOptions& options) {
  MUDB_RETURN_IF_ERROR(ValidateRankingOptions(options));
  const size_t n = candidates.size();
  RankingOutcome outcome;
  outcome.candidates.resize(n);
  for (size_t i = 0; i < n; ++i) {
    util::Status valid =
        measure::ValidateMeasureOptions(candidates[i].options);
    if (!valid.ok()) {
      return util::Status::InvalidArgument(
          "candidate " + std::to_string(i) + ": " + valid.message());
    }
    outcome.candidates[i].index = i;
  }
  if (n == 0) return outcome;

  const double tier_delta = RankingTierDelta(options, n);
  const size_t num_tiers = options.ladder.size() + 1;
  const size_t k = static_cast<size_t>(options.k);

  // active: still a top-k contender. done: at final precision (its own ε)
  // or exact — never resubmitted, but its (tight) interval keeps competing.
  std::vector<bool> active(n, true);
  std::vector<bool> done(n, false);

  for (size_t t = 0; t < num_tiers; ++t) {
    // Assemble the tier batch from the unfinished survivors. A ladder ε at
    // or below a candidate's own ε clamps to the final precision (that
    // request IS the candidate's final evaluation).
    std::vector<size_t> batch_index;
    std::vector<double> batch_eps;
    std::vector<MeasureRequest> batch;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || done[i]) continue;
      const double final_eps = candidates[i].options.epsilon;
      double eps =
          t < options.ladder.size() ? options.ladder[t] : final_eps;
      if (eps <= final_eps) eps = final_eps;
      MeasureRequest request = candidates[i];
      request.options.epsilon = eps;
      request.options.delta = tier_delta;
      batch_index.push_back(i);
      batch_eps.push_back(eps);
      batch.push_back(std::move(request));
    }
    if (batch.empty()) break;  // every surviving candidate is finished

    MeasureService::BatchOutcome tier = service_->RunBatch(std::move(batch));
    outcome.tier_stats.push_back(tier.stats);
    for (size_t b = 0; b < batch_index.size(); ++b) {
      const size_t i = batch_index[b];
      // batch_index ascends, so the propagated error is deterministically
      // the lowest-index failure.
      if (!tier.results[b].ok()) return tier.results[b].status();
      RankedCandidate& cand = outcome.candidates[i];
      cand.result = *tier.results[b];
      cand.result.tier = static_cast<int>(t);
      if (cand.result.is_exact ||
          batch_eps[b] == candidates[i].options.epsilon) {
        done[i] = true;
      }
    }

    // Prune: drop every unfinished candidate whose upper bound falls
    // strictly below the k-th largest lower bound among the active
    // candidates (finished ones included — their tight intervals only
    // sharpen the threshold; they themselves have nothing left to save and
    // simply lose in the final sort). A pure function of the tier-t
    // estimates: ties keep candidates, and the k holders of the top lower
    // bounds always survive.
    std::vector<double> lower;
    lower.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) lower.push_back(outcome.candidates[i].result.ci_lo);
    }
    if (lower.size() > k) {
      std::nth_element(lower.begin(), lower.begin() + (k - 1), lower.end(),
                       std::greater<double>());
      const double threshold = lower[k - 1];
      for (size_t i = 0; i < n; ++i) {
        if (active[i] && !done[i] &&
            outcome.candidates[i].result.ci_hi < threshold) {
          active[i] = false;
          outcome.candidates[i].pruned = true;
        }
      }
    }
  }

  // Final ranking over the survivors, all of which hold final-precision
  // estimates by now: sort by estimate, ties by input index.
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ea = outcome.candidates[a].result.value;
    const double eb = outcome.candidates[b].result.value;
    if (ea != eb) return ea > eb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  outcome.top_k = std::move(order);
  for (const BatchStats& stats : outcome.tier_stats) {
    outcome.total_sampling_steps += stats.sampling_steps;
  }
  return outcome;
}

util::StatusOr<RankingOutcome> MeasureService::RunTopK(
    std::vector<MeasureRequest> candidates, const RankingOptions& options) {
  RankingService ranking(this);
  return ranking.RankTopK(std::move(candidates), options);
}

}  // namespace mudb::service
