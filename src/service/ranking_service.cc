#include "src/service/ranking_service.h"

#include <string>
#include <utility>

#include "src/measure/measure.h"
#include "src/service/ranking_session.h"

namespace mudb::service {

util::Status ValidateRankingOptions(const RankingOptions& options) {
  if (options.k < 1) {
    return util::Status::InvalidArgument("ranking k must be >= 1");
  }
  if (!(options.delta > 0) || !(options.delta < 1)) {
    return util::Status::InvalidArgument("ranking delta must be in (0, 1)");
  }
  // Negated comparison so a NaN per_estimate_delta fails too.
  if (options.per_estimate_delta != 0.0 &&
      (!(options.per_estimate_delta > 0) ||
       !(options.per_estimate_delta < 1))) {
    return util::Status::InvalidArgument(
        "per_estimate_delta must be 0 (split delta) or lie in (0, 1)");
  }
  if (options.adaptive_ladder && options.max_tiers < 2) {
    return util::Status::InvalidArgument(
        "adaptive ladder needs max_tiers >= 2");
  }
  double prev = 2.0;
  for (double eps : options.ladder) {
    if (!(eps > 0) || !(eps <= 1)) {
      return util::Status::InvalidArgument(
          "ladder epsilons must lie in (0, 1]");
    }
    if (!(eps < prev)) {
      return util::Status::InvalidArgument(
          "ladder epsilons must strictly decrease");
    }
    prev = eps;
  }
  return util::Status::OK();
}

double RankingTierDelta(const RankingOptions& options, size_t num_candidates) {
  if (options.per_estimate_delta > 0) return options.per_estimate_delta;
  size_t tiers = options.adaptive_ladder
                     ? static_cast<size_t>(options.max_tiers)
                     : options.ladder.size() + 1;
  size_t n = num_candidates > 0 ? num_candidates : 1;
  return options.delta /
         (static_cast<double>(tiers) * static_cast<double>(n));
}

util::StatusOr<RankingOutcome> RankingService::RankTopK(
    std::vector<MeasureRequest> candidates, const RankingOptions& options) {
  // A one-shot ranking IS a fresh session fed one all-inserts delta: ids
  // are assigned densely in input order, so id == input index. Rerank
  // validates options and candidates before executing anything.
  RankingSession session(service_, options);
  RankingDelta delta;
  delta.inserts = std::move(candidates);
  MUDB_ASSIGN_OR_RETURN(RerankOutcome rerank,
                        session.Rerank(std::move(delta)));

  RankingOutcome outcome;
  outcome.candidates.reserve(rerank.candidates.size());
  for (SessionCandidate& cand : rerank.candidates) {
    RankedCandidate ranked;
    ranked.index = static_cast<size_t>(cand.id);
    ranked.result = std::move(cand.result);
    ranked.pruned = cand.pruned;
    outcome.candidates.push_back(std::move(ranked));
  }
  outcome.top_k.reserve(rerank.top_k.size());
  for (CandidateId id : rerank.top_k) {
    outcome.top_k.push_back(static_cast<size_t>(id));
  }
  outcome.tier_stats = std::move(rerank.tier_stats);
  outcome.total_sampling_steps = rerank.total_sampling_steps;
  outcome.trace_id = rerank.trace_id;
  return outcome;
}

util::StatusOr<RankingOutcome> MeasureService::RunTopK(
    std::vector<MeasureRequest> candidates, const RankingOptions& options) {
  RankingService ranking(this);
  return ranking.RankTopK(std::move(candidates), options);
}

}  // namespace mudb::service
