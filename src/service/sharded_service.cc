#include "src/service/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "src/obs/metrics.h"
#include "src/service/request_key.h"
#include "src/service/service_errors.h"
#include "src/translate/ground.h"
#include "src/util/timer.h"

namespace mudb::service {

namespace {

int ResolveRouterThreads(int requested, int num_shards) {
  if (requested >= 1) return requested;
  return std::clamp(2 * num_shards, 1, 16);
}

std::string ShardKeyPrefix(const convex::CanonicalBodyKey& key) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(key.fp.hi >> 32));
  return buf;
}

}  // namespace

ShardedMeasureService::ShardedMeasureService(
    const ShardedServiceOptions& options, ShardTransport* transport)
    : options_(options) {
  MUDB_CHECK(options_.num_shards >= 1);
  MUDB_CHECK(options_.retry.max_attempts >= 1);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  std::vector<MeasureService*> shard_ptrs;
  for (int s = 0; s < options_.num_shards; ++s) {
    ServiceOptions shard_options = options_.shard_options;
    shard_options.shard_id = s;
    shards_.push_back(std::make_unique<MeasureService>(shard_options));
    shard_ptrs.push_back(shards_.back().get());
  }
  per_shard_requests_ =
      std::make_unique<std::atomic<int64_t>[]>(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) per_shard_requests_[s] = 0;

  if (transport != nullptr) {
    MUDB_CHECK(transport->num_shards() == options_.num_shards);
    transport_ = transport;
  } else {
    in_process_ = std::make_unique<InProcessShardTransport>(shard_ptrs);
    transport_ = in_process_.get();
    if (options_.faults.has_value()) {
      injector_ = std::make_unique<FaultInjector>(options_.num_shards,
                                                  *options_.faults);
      faulty_ = std::make_unique<FaultInjectingTransport>(in_process_.get(),
                                                          injector_.get());
      transport_ = faulty_.get();
    }
  }

  const int workers =
      ResolveRouterThreads(options_.router_threads, options_.num_shards);
  routers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    routers_.emplace_back([this] { RouterLoop(); });
  }
}

ShardedMeasureService::~ShardedMeasureService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : routers_) t.join();
}

ShardedMeasureService::Ticket ShardedMeasureService::Submit(
    MeasureRequest request) {
  util::Deadline deadline = options_.default_deadline_ms > 0
                                ? util::Deadline::After(
                                      options_.default_deadline_ms)
                                : util::Deadline::Infinite();
  return Submit(std::move(request), deadline);
}

ShardedMeasureService::Ticket ShardedMeasureService::Submit(
    MeasureRequest request, util::Deadline deadline) {
  Job job;
  job.request = std::move(request);
  job.deadline = deadline;
  job.ctx = obs::CurrentContext();
  Ticket ticket = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return ticket;
}

void ShardedMeasureService::RouterLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain before exiting: every submitted promise is fulfilled.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Parent this request's spans under the submitting span, across the
    // router-worker hop.
    obs::ScopedContext adopt(job.ctx);
    job.promise.set_value(Execute(job));
  }
}

int ShardedMeasureService::ShardFor(
    const convex::CanonicalBodyKey& signature) const {
  // fp.hi is avalanche-mixed; mod keeps every shard populated for any N.
  return static_cast<int>(signature.fp.hi %
                          static_cast<uint64_t>(shards_.size()));
}

util::StatusOr<ShardedResponse> ShardedMeasureService::Execute(Job& job) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Counter* const m_requests = reg.counter("shard.requests");
  static obs::Counter* const m_attempts = reg.counter("shard.attempts");
  static obs::Counter* const m_retries = reg.counter("shard.retry");
  static obs::Counter* const m_transient =
      reg.counter("shard.transient_failure");
  static obs::Counter* const m_failures = reg.counter("shard.failure");
  static obs::Counter* const m_deadline =
      reg.counter("shard.deadline_expired");
  static obs::Histogram* const m_request_ms =
      reg.histogram("shard.request_ms");

  obs::Span span("shard.request");
  const int64_t t0 = obs::Clock::NowNanos();
  const auto observe_wall = [&] {
    m_request_ms->Observe(
        obs::Clock::NanosToMillis(obs::Clock::NowNanos() - t0));
  };
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  m_requests->Inc();
  MeasureRequest& request = job.request;

  // Permanent-error gate, identical to the unsharded path: a malformed
  // request fails here once, with no retry (retrying identical content
  // cannot help) and no shard attribution (no shard was involved).
  util::Status valid = measure::ValidateMeasureOptions(request.options);
  if (!valid.ok()) {
    total_failures_.fetch_add(1, std::memory_order_relaxed);
    m_failures->Inc();
    observe_wall();
    return valid;
  }

  // Ground the query form centrally so routing sees content: shard workers
  // always receive formula-form requests.
  if (!request.formula.has_value()) {
    if (request.query == nullptr || request.db == nullptr) {
      total_failures_.fetch_add(1, std::memory_order_relaxed);
      m_failures->Inc();
      observe_wall();
      return util::Status::InvalidArgument(
          "MeasureRequest needs a formula or a (query, db, candidate)");
    }
    translate::GroundOptions gopts;
    gopts.max_atoms = request.options.max_ground_atoms;
    obs::Span ground_span("shard.ground");
    util::StatusOr<translate::GroundResult> ground = translate::GroundQuery(
        *request.query, *request.db, request.candidate, gopts);
    if (!ground.ok()) {
      total_failures_.fetch_add(1, std::memory_order_relaxed);
      m_failures->Inc();
      observe_wall();
      return ground.status();
    }
    request.formula = std::move(ground.value().formula);
    request.query = nullptr;
    request.db = nullptr;
    request.candidate = model::Tuple{};
  }

  const convex::CanonicalBodyKey signature =
      RequestSignature(*request.formula, request.options);
  const int shard = ShardFor(signature);
  per_shard_requests_[static_cast<size_t>(shard)].fetch_add(
      1, std::memory_order_relaxed);
  if (span.recording()) {
    span.Annotate("shard", static_cast<double>(shard));
    span.Annotate("key_prefix", ShardKeyPrefix(signature));
  }

  // The jitter stream is a pure function of the request seed: the delay
  // schedule of a request is reproducible, run to run.
  util::Rng jitter = util::BackoffRng(request.options.seed);
  util::Status last_error;
  for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    if (job.deadline.expired()) {
      total_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      total_failures_.fetch_add(1, std::memory_order_relaxed);
      m_deadline->Inc();
      m_failures->Inc();
      observe_wall();
      return AnnotateRequestError(
          util::Status::DeadlineExceeded("deadline expired before delivery"),
          signature, shard, attempt - 1);
    }
    total_attempts_.fetch_add(1, std::memory_order_relaxed);
    m_attempts->Inc();
    if (attempt > 1) {
      total_retries_.fetch_add(1, std::memory_order_relaxed);
      m_retries->Inc();
    }

    util::StatusOr<measure::MeasureResult> result = [&] {
      obs::Span attempt_span("shard.attempt");
      if (attempt_span.recording()) {
        attempt_span.Annotate("attempt", static_cast<double>(attempt));
        // No annotation without a deadline: remaining_ms() is +inf then.
        const double remaining = job.deadline.remaining_ms();
        if (std::isfinite(remaining)) {
          attempt_span.Annotate("deadline_remaining_ms", remaining);
        }
      }
      return transport_->Call(shard, request);
    }();
    if (result.ok()) {
      ShardedResponse response;
      response.result = *result;
      response.shard = shard;
      response.attempts = attempt;
      response.trace_id = span.context().trace_id;
      observe_wall();
      return response;
    }
    if (!result.status().IsRetryable()) {
      // Permanent: the shard already attributed its own message (its
      // shard_id is set); only the structured attempt count is added here.
      total_failures_.fetch_add(1, std::memory_order_relaxed);
      m_failures->Inc();
      util::Status status = result.status();
      status.WithAttempts(attempt);
      if (status.context().shard_id < 0) status.WithShard(shard);
      observe_wall();
      return status;
    }
    total_transient_failures_.fetch_add(1, std::memory_order_relaxed);
    m_transient->Inc();
    last_error = result.status();
    if (attempt < options_.retry.max_attempts) {
      double delay_ms = options_.retry.backoff.DelayMs(attempt - 1, jitter);
      if (!job.deadline.infinite()) {
        delay_ms = std::min(delay_ms,
                            std::max(0.0, job.deadline.remaining_ms()));
      }
      if (delay_ms > 0) {
        obs::Span backoff_span("shard.backoff");
        if (backoff_span.recording()) {
          backoff_span.Annotate("attempt", static_cast<double>(attempt));
          backoff_span.Annotate("delay_ms", delay_ms);
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
  }
  util::StatusOr<ShardedResponse> degraded =
      Degrade(request, signature, shard, options_.retry.max_attempts,
              std::move(last_error), job.deadline);
  if (degraded.ok()) {
    degraded.value().trace_id = span.context().trace_id;
  }
  observe_wall();
  return degraded;
}

util::StatusOr<ShardedResponse> ShardedMeasureService::Degrade(
    const MeasureRequest& request, const convex::CanonicalBodyKey& signature,
    int shard, int attempts, util::Status last_error,
    const util::Deadline& deadline) {
  static obs::Counter* const m_degraded =
      obs::MetricsRegistry::Global().counter("shard.degraded");
  static obs::Counter* const m_degrade_failures =
      obs::MetricsRegistry::Global().counter("shard.failure");
  if (options_.degrade != DegradeMode::kNone && !deadline.expired()) {
    obs::Span span("shard.degrade");
    if (span.recording()) {
      span.Annotate("mode", options_.degrade == DegradeMode::kCoarsenEpsilon
                                ? "coarsen_epsilon"
                                : "local_recompute");
      span.Annotate("attempts_exhausted", static_cast<double>(attempts));
      const double remaining = deadline.remaining_ms();
      if (std::isfinite(remaining)) {
        span.Annotate("deadline_remaining_ms", remaining);
      }
    }
    // Local re-execution never consults the failing transport. It computes
    // exactly what the unsharded service would: ComputeNu is a pure
    // function of (formula, options), so the degraded result stays
    // bit-deterministic — at the original ε (kLocalRecompute) or at the
    // stamped coarser ε (kCoarsenEpsilon).
    measure::MeasureOptions opts = request.options;
    double degraded_epsilon = 0.0;
    if (options_.degrade == DegradeMode::kCoarsenEpsilon) {
      degraded_epsilon = std::min(1.0, opts.epsilon * options_.coarsen_factor);
      opts.epsilon = degraded_epsilon;
      if (span.recording()) span.Annotate("epsilon", degraded_epsilon);
    }
    util::StatusOr<measure::MeasureResult> local =
        measure::ComputeNu(*request.formula, opts);
    if (local.ok()) {
      total_degraded_.fetch_add(1, std::memory_order_relaxed);
      m_degraded->Inc();
      ShardedResponse response;
      response.result = *local;
      response.shard = -1;
      response.attempts = attempts;
      response.degraded = true;
      response.degraded_epsilon = degraded_epsilon;
      return response;
    }
    total_failures_.fetch_add(1, std::memory_order_relaxed);
    m_degrade_failures->Inc();
    return AnnotateRequestError(local.status(), signature, -1, attempts);
  }
  total_failures_.fetch_add(1, std::memory_order_relaxed);
  m_degrade_failures->Inc();
  return AnnotateRequestError(std::move(last_error), signature, shard,
                              attempts);
}

ShardedMeasureService::BatchOutcome ShardedMeasureService::RunBatch(
    std::vector<MeasureRequest> requests) {
  static obs::Histogram* const m_batch_ms =
      obs::MetricsRegistry::Global().histogram("shard.batch_ms");
  obs::Span span("shard.batch");
  if (span.recording()) {
    span.Annotate("requests", static_cast<double>(requests.size()));
  }
  util::WallTimer timer;
  ShardedStats before = stats();
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (MeasureRequest& request : requests) {
    tickets.push_back(Submit(std::move(request)));
  }
  BatchOutcome outcome;
  outcome.results.reserve(tickets.size());
  for (Ticket& ticket : tickets) {
    outcome.results.push_back(ticket.get());
  }
  ShardedStats after = stats();
  outcome.stats.requests = after.requests - before.requests;
  outcome.stats.attempts = after.attempts - before.attempts;
  outcome.stats.retries = after.retries - before.retries;
  outcome.stats.transient_failures =
      after.transient_failures - before.transient_failures;
  outcome.stats.degraded = after.degraded - before.degraded;
  outcome.stats.failures = after.failures - before.failures;
  outcome.stats.deadline_expired =
      after.deadline_expired - before.deadline_expired;
  outcome.stats.per_shard_requests.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    outcome.stats.per_shard_requests[s] =
        after.per_shard_requests[s] - before.per_shard_requests[s];
  }
  outcome.stats.wall_ms = timer.ElapsedMillis();
  if (span.recording()) {
    span.Annotate("retries", static_cast<double>(outcome.stats.retries));
    span.Annotate("degraded", static_cast<double>(outcome.stats.degraded));
  }
  m_batch_ms->Observe(outcome.stats.wall_ms);
  return outcome;
}

ShardedStats ShardedMeasureService::stats() const {
  ShardedStats s;
  s.requests = total_requests_.load(std::memory_order_relaxed);
  s.attempts = total_attempts_.load(std::memory_order_relaxed);
  s.retries = total_retries_.load(std::memory_order_relaxed);
  s.transient_failures =
      total_transient_failures_.load(std::memory_order_relaxed);
  s.degraded = total_degraded_.load(std::memory_order_relaxed);
  s.failures = total_failures_.load(std::memory_order_relaxed);
  s.deadline_expired =
      total_deadline_expired_.load(std::memory_order_relaxed);
  s.per_shard_requests.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    s.per_shard_requests[i] =
        per_shard_requests_[i].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace mudb::service
