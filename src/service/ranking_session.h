// RankingSession: incremental / streaming re-ranking with content-keyed
// delta invalidation.
//
// The one-shot scheduler (ranking_service.h) recomputes every ranking from
// scratch, but the interactive workload mutates: the database refines nulls,
// candidates stream in and drop out, and after each change almost every
// tuple's certainty interval is exactly what it was. A RankingSession keeps
// candidates across calls and exposes Rerank(RankingDelta) — inserts,
// removals, and body mutations — so an update costs a small fraction of a
// cold ranking (bench_rerank tracks the delta-vs-cold step ratio).
//
// How incrementality works — replay, don't patch. Every tier evaluation the
// ladder performs is a pure function of its request signature
// (request_key.h: formula content × method × ε × δ × seed), so the session
// keeps a memo from signature to result. Rerank re-runs the full ladder
// decision procedure over the current candidate set from tier 0 — pruning
// thresholds, freezes, and the adaptive schedule are all recomputed — but
// every evaluation whose signature is warm is served from the memo for free
// (bit-identical to recomputation, zero sampling steps); only signatures
// the memo has never seen reach the MeasureService. The decision procedure
// itself costs microseconds; the samples are the expense, and those are
// what the memo elides.
//
// Invalidation is content-keyed, not positional and not wall-clock: a
// mutated candidate's new grounded formula produces new signatures, so its
// stale entries are simply never looked up again (their refcounts drop and
// they are garbage-collected); a mutation that grounds to the identical
// content is a no-op and keeps every warm interval. Untouched candidates
// keep their warm tiers and pay nothing — unless the ranking's pruning
// threshold moved enough that the replay walks them through a tier they
// never ran before, in which case exactly those new tiers are sampled.
//
// Determinism contract (the rerank contract): top_k, and every candidate's
// result / pruned / frozen fields, are a pure function of the session's
// final (id → candidate content) map and the options — independent of
// thread count, submission order, and the delta sequence that produced the
// state. Corollary: they are bit-identical to a cold ranking of the same
// final candidate set (a fresh session, or RankTopK when ids are dense) —
// bench_rerank hard-asserts this across thread counts before reporting.
// Only the schedule accounting (tier_stats, warm_hits,
// total_sampling_steps) depends on history: it reports what THIS call paid.
//
// One caveat the contract depends on: with the default δ/(N·T) split, a
// delta that changes N re-budgets every request's δ, which changes every
// signature — correct, but a full recompute. Streaming workloads that
// insert/remove should set RankingOptions::per_estimate_delta so δ (and
// hence every signature) is independent of N.
//
// Not thread-safe: one Rerank at a time, like RunBatch/RankTopK.

#ifndef MUDB_SRC_SERVICE_RANKING_SESSION_H_
#define MUDB_SRC_SERVICE_RANKING_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/convex/canonical.h"
#include "src/measure/measure.h"
#include "src/service/measure_service.h"
#include "src/service/ranking_service.h"
#include "src/util/status.h"

namespace mudb::service {

/// Stable handle for one candidate in a session. Assigned by Rerank in
/// insert order from a monotonic counter; never reused.
using CandidateId = uint64_t;

/// One batch of changes. Applied atomically (all-or-nothing) in the order
/// removals → updates → inserts; an id unknown at its point of application
/// fails the whole delta with NotFound and leaves the session untouched.
struct RankingDelta {
  /// New candidates; ids are assigned in order and returned in
  /// RerankOutcome::inserted_ids.
  std::vector<MeasureRequest> inserts;
  /// Candidates to drop (their warm estimates are released).
  std::vector<CandidateId> removals;
  /// Body mutations: the candidate's request is replaced wholesale (the
  /// grounded content decides invalidation — an update that grounds to the
  /// same signature keeps every warm estimate).
  std::vector<std::pair<CandidateId, MeasureRequest>> updates;
};

/// Per-candidate outcome of one Rerank, in ascending id order. The result /
/// pruned / frozen fields obey the rerank determinism contract (pure
/// function of final state); see the file comment.
struct SessionCandidate {
  CandidateId id = 0;
  /// Freshest evaluation at the current content: value, [ci_lo, ci_hi],
  /// tier, epsilon_used, engine accounting.
  measure::MeasureResult result;
  /// Eliminated before reaching its final ε this rerank.
  bool pruned = false;
  /// Reached its own final precision (or an exact engine froze it).
  bool frozen = false;
};

struct RerankOutcome {
  /// The top-k candidate ids, most certain first (ties by ascending id).
  std::vector<CandidateId> top_k;
  /// Every live candidate, ascending id.
  std::vector<SessionCandidate> candidates;
  /// Ids assigned to this delta's inserts, positionally aligned.
  std::vector<CandidateId> inserted_ids;
  /// Accounting for what THIS call executed (history-dependent): one entry
  /// per tier the replay walked; all-warm tiers report zero requests.
  std::vector<BatchStats> tier_stats;
  /// Hit-and-run steps this call actually sampled (Σ tier_stats).
  int64_t total_sampling_steps = 0;
  /// Tier evaluations the ladder consumed, and how many of them the
  /// session memo served without touching the service.
  int64_t evaluations = 0;
  int64_t warm_hits = 0;
  /// Updated candidates whose new content invalidated their warm state
  /// (an update that grounds to identical content does not count).
  int64_t invalidated = 0;
  /// Flight-recorder handle: trace id of this rerank's span tree when
  /// tracing was enabled (obs::CollectTrace fetches it), 0 otherwise.
  uint64_t trace_id = 0;
};

/// Incremental re-ranking session over a borrowed MeasureService. See the
/// file comment for the replay design and the determinism contract.
class RankingSession {
 public:
  /// `service` outlives the session; `options` are validated on every
  /// Rerank (so a default-constructed session with bad options fails
  /// loudly, not at construction).
  RankingSession(MeasureService* service, RankingOptions options)
      : service_(service), options_(std::move(options)) {}

  RankingSession(const RankingSession&) = delete;
  RankingSession& operator=(const RankingSession&) = delete;

  /// Applies `delta`, then ranks the surviving candidates. On any error —
  /// invalid options, unknown id, a request that fails to ground or
  /// evaluate — the returned outcome is the error status; delta validation
  /// failures leave the session untouched, while an evaluation failure
  /// leaves the delta applied and every tier completed so far warm (fix or
  /// remove the offending candidate and Rerank again). Query-form requests
  /// are grounded once here; they borrow their Query/Database only for the
  /// duration of the call.
  util::StatusOr<RerankOutcome> Rerank(RankingDelta delta = {});

  /// Live candidate count.
  size_t num_candidates() const { return candidates_.size(); }
  /// Warm per-tier results currently retained across all candidates.
  size_t memo_size() const { return memo_.size(); }
  /// The last successful Rerank's outcome entry for `id` (nullopt when the
  /// id is unknown, removed, or not yet ranked).
  std::optional<SessionCandidate> Candidate(CandidateId id) const;

 private:
  struct Slot {
    CandidateId id = 0;
    MeasureRequest request;  // always formula-form after grounding
    convex::CanonicalBodyKey content_key;  // signature of (content, options)
    std::vector<convex::CanonicalBodyKey> owned_sigs;  // memo refs held
    // Last successful rank's outcome (introspection only; rebuilt per
    // Rerank, so these never feed the next call's decisions).
    SessionCandidate last;
    bool ranked = false;
  };
  struct MemoEntry {
    measure::MeasureResult result;
    int64_t refs = 0;
  };
  using MemoMap = std::unordered_map<convex::CanonicalBodyKey, MemoEntry,
                                     convex::CanonicalBodyKey::Hash>;

  /// Grounds a query-form request into formula form (no-op for formula
  /// requests); validates its MeasureOptions.
  util::StatusOr<MeasureRequest> ResolveRequest(MeasureRequest request,
                                                const std::string& what);
  util::Status ApplyDelta(RankingDelta&& delta, RerankOutcome* outcome);
  void ReleaseSlot(Slot& slot);
  void TakeRef(Slot& slot, const convex::CanonicalBodyKey& sig);
  util::Status RunLadder(RerankOutcome* outcome);
  Slot* FindSlot(CandidateId id);
  const Slot* FindSlot(CandidateId id) const;

  MeasureService* service_;
  RankingOptions options_;
  std::vector<Slot> candidates_;  // ascending id
  MemoMap memo_;
  CandidateId next_id_ = 0;
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_RANKING_SESSION_H_
