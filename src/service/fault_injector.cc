#include "src/service/fault_injector.h"

#include "src/util/status.h"

namespace mudb::service {

FaultInjector::FaultInjector(int num_shards,
                             const FaultInjectorOptions& options)
    : options_(options) {
  MUDB_CHECK(num_shards >= 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  util::Rng root(options.seed);
  for (int s = 0; s < num_shards; ++s) {
    auto state = std::make_unique<ShardState>();
    state->rng = root.Split(static_cast<uint64_t>(s));
    shards_.push_back(std::move(state));
  }
}

FaultInjector::Decision FaultInjector::Decide(int shard) {
  MUDB_CHECK(shard >= 0 && shard < num_shards());
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  Decision decision;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.down) {
      decision.fail = true;
    } else if (state.fail_next > 0) {
      --state.fail_next;
      decision.fail = true;
    }
    // The random schedule always advances by exactly two draws per call —
    // even when an explicit control already decided — so explicit controls
    // never shift the positions of later scheduled faults.
    const double fail_draw = state.rng.Uniform01();
    const double latency_draw = state.rng.Uniform01();
    if (!decision.fail && fail_draw < options_.unavailable_rate) {
      decision.fail = true;
    }
    if (latency_draw < options_.latency_rate) {
      decision.latency_ms = options_.latency_spike_ms;
    }
  }
  if (decision.fail) {
    injected_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  if (decision.latency_ms > 0) {
    injected_latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::FailNext(int shard, int k) {
  MUDB_CHECK(shard >= 0 && shard < num_shards());
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(state.mu);
  state.fail_next += k;
}

void FaultInjector::SetDown(int shard, bool down) {
  MUDB_CHECK(shard >= 0 && shard < num_shards());
  ShardState& state = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(state.mu);
  state.down = down;
}

}  // namespace mudb::service
