// Sharded, size-bounded LRU caches for the measurement serving layer.
//
// Two cache families share the mechanics:
//   * EstimateCache — per-body volume estimates, keyed by canonical body
//     key × ε tier (convex::CombineKeyWithParams). Plugged into the FPRAS
//     pipeline as volume::BodyEstimateCache, it lets overlapping Karp–Luby
//     unions and repeated candidates skip a body's sampling entirely.
//   * ShardedLruCache<Value> — the generic engine, reused by the service's
//     request-level result memo (service/measure_service.h).
//
// Why a cache hit cannot change a result: every cached value is a pure
// function of its key (body estimates draw from convex::RngForKey streams;
// request results are pure functions of the request signature), so a hit
// returns bit-exactly what recomputation would produce. The cache is a work
// saver, never a source of nondeterminism — evicting everything mid-stream
// only costs resampling.
//
// Concurrency: shard-per-mutex with keys routed by their high fingerprint
// bits; counters are atomics, so stats() is cheap and wait-free. Safe for
// concurrent Lookup/Insert from any number of threads.

#ifndef MUDB_SRC_SERVICE_ESTIMATE_CACHE_H_
#define MUDB_SRC_SERVICE_ESTIMATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/convex/canonical.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"
#include "src/volume/union_volume.h"

namespace mudb::service {

/// Operation counters of one cache. Monotonic between Clear() calls —
/// Clear() resets every counter together with the entries, so post-clear
/// hit-rate reporting starts from zero instead of mixing epochs (a mixed
/// snapshot could claim a hit rate no post-clear workload produced).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Current entry count (not monotonic).
  int64_t entries = 0;
  /// Hit ratio in [0, 1]; 0 when no lookups happened yet.
  double HitRate() const {
    int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
  }
};

/// Generic sharded LRU map from canonical keys to small values. Capacity is
/// global (split evenly across shards, at least one entry each); the
/// least-recently-used entry of a full shard is evicted on insert.
template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` = max entries across all shards; `shards` is rounded up to
  /// a power of two so key bits route without division. Shards hold a
  /// mutex, so the vector is built at full size once and never reallocated.
  explicit ShardedLruCache(size_t capacity, int shards = 8)
      : shards_(RoundUpPow2(shards)) {
    size_t per_shard = capacity / shards_.size();
    per_shard_capacity_ = per_shard > 0 ? per_shard : 1;
  }

  /// Also publishes this cache's hit/miss/insertion/eviction counts into
  /// the global MetricsRegistry under `<prefix>.hit`, `<prefix>.miss`,
  /// `<prefix>.insertion`, `<prefix>.eviction` (satellite of the struct
  /// counters, which stay authoritative). Call once, before traffic.
  void PublishMetrics(const std::string& prefix) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    metric_hits_ = reg.counter(prefix + ".hit");
    metric_misses_ = reg.counter(prefix + ".miss");
    metric_insertions_ = reg.counter(prefix + ".insertion");
    metric_evictions_ = reg.counter(prefix + ".eviction");
  }

  std::optional<Value> Lookup(const convex::CanonicalBodyKey& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (metric_misses_ != nullptr) metric_misses_->Inc();
      return std::nullopt;
    }
    // Move to the front of the recency list.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) metric_hits_->Inc();
    return it->second->second;
  }

  void Insert(const convex::CanonicalBodyKey& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (metric_evictions_ != nullptr) metric_evictions_->Inc();
      entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    if (metric_insertions_ != nullptr) metric_insertions_->Inc();
    entries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Empties every shard and resets all counters as one event. Every shard
  /// lock is held across both, so concurrent Lookup/Insert traffic lands
  /// entirely before or entirely after the reset — the previous per-shard
  /// sweep let a racing epoch mix stale hit/miss totals with a zeroed entry
  /// count, which made derived post-clear rates incoherent (negative deltas,
  /// ratios above 1). Only Clear takes more than one shard lock, so the
  /// ascending acquisition order cannot deadlock.
  void Clear() {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (Shard& shard : shards_) locks.emplace_back(shard.mu);
    for (Shard& shard : shards_) {
      shard.index.clear();
      shard.lru.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    insertions_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    entries_.store(0, std::memory_order_relaxed);
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    return s;
  }

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used. The map points into the list.
    std::list<std::pair<convex::CanonicalBodyKey, Value>> lru;
    std::unordered_map<
        convex::CanonicalBodyKey,
        typename std::list<std::pair<convex::CanonicalBodyKey, Value>>::
            iterator,
        convex::CanonicalBodyKey::Hash>
        index;
  };

  static size_t RoundUpPow2(int shards) {
    size_t rounded = 1;
    while (rounded < static_cast<size_t>(shards > 1 ? shards : 1)) {
      rounded *= 2;
    }
    return rounded;
  }

  Shard& ShardFor(const convex::CanonicalBodyKey& key) {
    // High bits: the low bits already feed the in-shard hash map.
    return shards_[(key.fp.hi >> 32) & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
  size_t per_shard_capacity_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> entries_{0};
  // Registry mirrors (null until PublishMetrics; registry-owned, never
  // dangle). The struct counters above stay the source of truth.
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_insertions_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

/// The per-body estimate cache the FPRAS pipeline plugs into
/// (MeasureOptions::body_cache / FprasOptions::body_cache). Tracks the
/// hit-and-run steps that cache hits saved, on top of the LRU counters.
class EstimateCache : public volume::BodyEstimateCache {
 public:
  struct Options {
    /// Max entries across all shards. An entry is ~100 bytes, so the
    /// default bounds the cache around half a megabyte.
    size_t capacity = 4096;
    /// Rounded up to a power of two.
    int shards = 8;
  };

  EstimateCache();  // default Options
  explicit EstimateCache(const Options& options);

  std::optional<volume::CachedBodyEstimate> Lookup(
      const convex::CanonicalBodyKey& key) override;
  void Insert(const convex::CanonicalBodyKey& key,
              const volume::CachedBodyEstimate& estimate) override;

  /// Empties the cache and resets stats() AND steps_saved() to zero (the
  /// counters describe one epoch; see ShardedLruCache::Clear).
  void Clear();
  CacheStats stats() const { return cache_.stats(); }
  /// Total hit-and-run steps that Lookup hits avoided recomputing.
  int64_t steps_saved() const {
    return steps_saved_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return cache_.capacity(); }

 private:
  ShardedLruCache<volume::CachedBodyEstimate> cache_;
  std::atomic<int64_t> steps_saved_{0};
  obs::Counter* metric_steps_saved_ = nullptr;  // registry-owned
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_ESTIMATE_CACHE_H_
