#include "src/service/ranking_session.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/request_key.h"
#include "src/service/service_errors.h"
#include "src/translate/ground.h"

namespace mudb::service {

namespace {

// Values below this floor never route to the additive AFPRAS at an
// intermediate tier: an additive ±ε interval around a small value is wider,
// relatively, than the multiplicative FPRAS interval it would replace, so
// the tier would lose pruning power exactly where the cut usually sits.
constexpr double kRouteValueFloor = 0.15;

// The k-th largest estimate among the active candidates — the running cut
// the routing rule measures distance from. Falls back to the smallest
// active estimate when fewer than k are active (then nobody is prunable and
// the cut only gates routing).
double KthLargestValue(const std::vector<SessionCandidate>& candidates,
                       const std::vector<bool>& active, size_t k) {
  std::vector<double> values;
  values.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (active[i]) values.push_back(candidates[i].result.value);
  }
  if (values.empty()) return 0.0;
  const size_t nth = std::min(k, values.size()) - 1;
  std::nth_element(values.begin(), values.begin() + nth, values.end(),
                   std::greater<double>());
  return values[nth];
}

// Chooses the next adaptive tier's ε from the tier-t estimates alone — a
// pure function of (estimates, options), so the schedule inherits the
// determinism contract of the estimates. std::nullopt means "jump straight
// to the final tier".
std::optional<double> NextAdaptiveEps(
    size_t t, double cur_eps, const RankingOptions& options,
    const std::vector<SessionCandidate>& candidates,
    const std::vector<bool>& active, const std::vector<bool>& frozen,
    const std::vector<double>& final_eps, size_t k) {
  // δ budget: the split paid for max_tiers tiers, so tier t+1 must be the
  // final one once only one slot remains.
  if (t + 2 >= static_cast<size_t>(options.max_tiers)) return std::nullopt;

  const size_t n = candidates.size();
  size_t num_active = 0;
  size_t num_open = 0;  // active and not yet at final precision
  for (size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    ++num_active;
    if (!frozen[i]) ++num_open;
  }
  if (num_open == 0) return std::nullopt;
  // Separated: at most k contenders remain, so an intermediate tier cannot
  // prune anyone — only the survivors' final refinement is left.
  if (num_active <= k) return std::nullopt;

  const double vk = KthLargestValue(candidates, active, k);

  // Gap of every open candidate to the running cut. The median sets the
  // scale the next tier must resolve to prune about half of them.
  std::vector<double> gaps;
  gaps.reserve(num_open);
  for (size_t i = 0; i < n; ++i) {
    if (active[i] && !frozen[i]) {
      gaps.push_back(std::abs(candidates[i].result.value - vk));
    }
  }
  std::sort(gaps.begin(), gaps.end());
  const double median_gap = gaps[gaps.size() / 2];

  // An interval of half-width ~gap/2 separates a candidate from the cut;
  // clamp into [cur/4, cur/2] so tiers shrink geometrically however the
  // gaps degenerate.
  double eps = median_gap / 2;
  eps = std::min(eps, cur_eps / 2);
  eps = std::max(eps, cur_eps / 4);

  // A tier at or below the open candidates' finest final ε would clamp for
  // everyone — it would BE the final tier, so run the final tier instead.
  double floor_eps = 1.0;
  for (size_t i = 0; i < n; ++i) {
    if (active[i] && !frozen[i]) floor_eps = std::min(floor_eps, final_eps[i]);
  }
  if (eps <= floor_eps) return std::nullopt;

  // Worth-it under the steps ∝ 1/ε² cost model: the tier charges every open
  // candidate ~1/ε² and can at best save the prunable ones (gap wide enough
  // for the tier to separate) their ~1/ε_final² refinement. Skip to final
  // when the bound says the tier cannot pay for itself.
  size_t prunable = 0;
  for (double g : gaps) {
    if (g / 2 > eps) ++prunable;
  }
  if (static_cast<double>(num_open) * floor_eps * floor_eps >=
      static_cast<double>(prunable) * eps * eps) {
    return std::nullopt;
  }
  return eps;
}

}  // namespace

RankingSession::Slot* RankingSession::FindSlot(CandidateId id) {
  auto it = std::lower_bound(
      candidates_.begin(), candidates_.end(), id,
      [](const Slot& slot, CandidateId value) { return slot.id < value; });
  if (it == candidates_.end() || it->id != id) return nullptr;
  return &*it;
}

const RankingSession::Slot* RankingSession::FindSlot(CandidateId id) const {
  return const_cast<RankingSession*>(this)->FindSlot(id);
}

std::optional<SessionCandidate> RankingSession::Candidate(
    CandidateId id) const {
  const Slot* slot = FindSlot(id);
  if (slot == nullptr || !slot->ranked) return std::nullopt;
  return slot->last;
}

util::StatusOr<MeasureRequest> RankingSession::ResolveRequest(
    MeasureRequest request, const std::string& what) {
  util::Status valid = measure::ValidateMeasureOptions(request.options);
  if (!valid.ok()) {
    return util::Status::InvalidArgument(what + ": " + valid.message());
  }
  if (!request.formula.has_value()) {
    if (request.query == nullptr || request.db == nullptr) {
      return util::Status::InvalidArgument(
          what + ": MeasureRequest needs a formula or a (query, db, candidate)");
    }
    translate::GroundOptions gopts;
    gopts.max_atoms = request.options.max_ground_atoms;
    util::StatusOr<translate::GroundResult> ground = translate::GroundQuery(
        *request.query, *request.db, request.candidate, gopts);
    if (!ground.ok()) {
      return util::Status(ground.status().code(),
                          what + ": " + ground.status().message());
    }
    request.formula = std::move(ground.value().formula);
    // Drop the borrowed pointers: the session holds requests across calls,
    // and the grounded formula is all the ladder needs.
    request.query = nullptr;
    request.db = nullptr;
    request.candidate = model::Tuple{};
  }
  return request;
}

void RankingSession::ReleaseSlot(Slot& slot) {
  for (const convex::CanonicalBodyKey& sig : slot.owned_sigs) {
    auto it = memo_.find(sig);
    if (it != memo_.end() && --it->second.refs <= 0) memo_.erase(it);
  }
  slot.owned_sigs.clear();
}

void RankingSession::TakeRef(Slot& slot,
                             const convex::CanonicalBodyKey& sig) {
  for (const convex::CanonicalBodyKey& owned : slot.owned_sigs) {
    if (owned == sig) return;  // this slot already holds a reference
  }
  slot.owned_sigs.push_back(sig);
  ++memo_[sig].refs;
}

util::Status RankingSession::ApplyDelta(RankingDelta&& delta,
                                        RerankOutcome* outcome) {
  obs::Span span("ranking.apply_delta");
  if (span.recording()) {
    span.Annotate("inserts", static_cast<double>(delta.inserts.size()));
    span.Annotate("removals", static_cast<double>(delta.removals.size()));
    span.Annotate("updates", static_cast<double>(delta.updates.size()));
  }
  // Validate and resolve EVERYTHING before touching the session, so a bad
  // delta is all-or-nothing.
  // Error references go through service_errors.h (CandidateRef) so session
  // messages stay format-uniform with the rest of the serving layer.
  std::unordered_set<CandidateId> removed;
  for (CandidateId id : delta.removals) {
    if (FindSlot(id) == nullptr || removed.count(id) > 0) {
      return util::Status::NotFound("removal: unknown " + CandidateRef(id));
    }
    removed.insert(id);
  }
  std::vector<std::pair<CandidateId, MeasureRequest>> staged_updates;
  staged_updates.reserve(delta.updates.size());
  for (auto& [id, request] : delta.updates) {
    if (FindSlot(id) == nullptr || removed.count(id) > 0) {
      return util::Status::NotFound("update: unknown " + CandidateRef(id));
    }
    MUDB_ASSIGN_OR_RETURN(
        MeasureRequest resolved,
        ResolveRequest(std::move(request), CandidateRef(id)));
    staged_updates.emplace_back(id, std::move(resolved));
  }
  std::vector<MeasureRequest> staged_inserts;
  staged_inserts.reserve(delta.inserts.size());
  for (size_t j = 0; j < delta.inserts.size(); ++j) {
    // Inserts are named by the id they are about to receive, which for a
    // fresh session makes the message match the input index.
    MUDB_ASSIGN_OR_RETURN(
        MeasureRequest resolved,
        ResolveRequest(std::move(delta.inserts[j]),
                       CandidateRef(next_id_ + j)));
    staged_inserts.push_back(std::move(resolved));
  }

  // Commit: removals → updates → inserts.
  for (CandidateId id : delta.removals) {
    auto it = std::lower_bound(
        candidates_.begin(), candidates_.end(), id,
        [](const Slot& slot, CandidateId value) { return slot.id < value; });
    ReleaseSlot(*it);
    candidates_.erase(it);
  }
  for (auto& [id, resolved] : staged_updates) {
    Slot& slot = *FindSlot(id);
    convex::CanonicalBodyKey key =
        RequestSignature(*resolved.formula, resolved.options);
    if (key == slot.content_key) {
      // Identical content: the mutation is a no-op and every warm tier
      // survives (this is the content-keyed part of invalidation).
      slot.request = std::move(resolved);
      continue;
    }
    ReleaseSlot(slot);
    slot.request = std::move(resolved);
    slot.content_key = key;
    slot.last = SessionCandidate{};
    slot.last.id = slot.id;
    slot.ranked = false;
    ++outcome->invalidated;
  }
  for (MeasureRequest& resolved : staged_inserts) {
    Slot slot;
    slot.id = next_id_++;
    slot.content_key = RequestSignature(*resolved.formula, resolved.options);
    slot.request = std::move(resolved);
    slot.last.id = slot.id;
    outcome->inserted_ids.push_back(slot.id);
    candidates_.push_back(std::move(slot));
  }
  return util::Status::OK();
}

util::Status RankingSession::RunLadder(RerankOutcome* outcome) {
  const size_t n = candidates_.size();
  const size_t k = static_cast<size_t>(options_.k);
  const double tier_delta = RankingTierDelta(options_, n);
  const bool adaptive = options_.adaptive_ladder;

  outcome->candidates.clear();
  outcome->candidates.reserve(n);
  std::vector<double> final_eps(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    SessionCandidate cand;
    cand.id = candidates_[i].id;
    outcome->candidates.push_back(cand);
    final_eps[i] = candidates_[i].request.options.epsilon;
  }

  // active: still a top-k contender. frozen: at final precision (its own ε)
  // or exact — never resubmitted, but its tight interval keeps competing.
  std::vector<bool> active(n, true);
  std::vector<bool> frozen(n, false);

  // The nominal ε of the tier about to run; nullopt = the final tier
  // (every candidate at its own ε). Fixed mode walks the ladder; adaptive
  // mode starts at the ladder's coarsest entry and derives the rest.
  std::optional<double> tier_eps;
  // Routing context: the previous tier's running cut (k-th largest active
  // estimate). Routing only kicks in once estimates exist at all.
  bool have_cut = false;
  double prev_vk = 0.0;

  for (size_t t = 0;; ++t) {
    if (t == 0) {
      tier_eps = options_.ladder.empty()
                     ? std::nullopt
                     : std::optional<double>(options_.ladder.front());
    } else if (!adaptive) {
      tier_eps = t < options_.ladder.size()
                     ? std::optional<double>(options_.ladder[t])
                     : std::nullopt;
    }
    // (adaptive mode: tier_eps for t >= 1 was chosen at the end of the
    // previous iteration, from that tier's estimates.)

    // Assemble the tier from the unfinished survivors. A tier ε at or below
    // a candidate's own ε clamps to the final precision — that request IS
    // the candidate's final evaluation, so routing never applies to it.
    struct Pending {
      size_t idx;
      double eps;
      convex::CanonicalBodyKey sig;
      bool warm;
    };
    std::vector<Pending> needed;
    std::vector<size_t> batch_pending;  // positions in `needed` sent out
    std::vector<MeasureRequest> batch;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || frozen[i]) continue;
      Slot& slot = candidates_[i];
      double eps = tier_eps.has_value() ? *tier_eps : final_eps[i];
      if (eps <= final_eps[i]) eps = final_eps[i];
      MeasureRequest request = slot.request;
      request.options.epsilon = eps;
      request.options.delta = tier_delta;
      if (options_.route_engines && eps != final_eps[i] && have_cut &&
          request.options.method == measure::Method::kFpras) {
        const double value = outcome->candidates[i].result.value;
        if (value >= kRouteValueFloor && std::abs(value - prev_vk) > eps) {
          request.options.method = measure::Method::kAfpras;
        }
      }
      Pending pending;
      pending.idx = i;
      pending.eps = eps;
      pending.sig = RequestSignature(*request.formula, request.options);
      auto memo_it = memo_.find(pending.sig);
      pending.warm = memo_it != memo_.end();
      if (pending.warm) {
        outcome->candidates[i].result = memo_it->second.result;
        ++outcome->warm_hits;
        TakeRef(slot, pending.sig);
      } else {
        batch_pending.push_back(needed.size());
        batch.push_back(std::move(request));
      }
      needed.push_back(pending);
    }
    if (needed.empty()) break;  // every surviving candidate is finished
    outcome->evaluations += static_cast<int64_t>(needed.size());

    static obs::Counter* const m_tiers =
        obs::MetricsRegistry::Global().counter("ranking.tiers");
    static obs::Counter* const m_evaluations =
        obs::MetricsRegistry::Global().counter("ranking.evaluations");
    m_tiers->Inc();
    m_evaluations->Inc(static_cast<int64_t>(needed.size()));
    // One span per executed ε-tier: the batch it submitted parents under
    // it, so a trace reads as rerank → tier → process → estimator phases.
    obs::Span tier_span("ranking.tier");
    if (tier_span.recording()) {
      tier_span.Annotate("tier", static_cast<double>(t));
      tier_span.Annotate("eps", tier_eps.has_value() ? *tier_eps : 0.0);
      tier_span.Annotate("final", tier_eps.has_value() ? 0.0 : 1.0);
      tier_span.Annotate("evaluations", static_cast<double>(needed.size()));
      tier_span.Annotate("batched", static_cast<double>(batch.size()));
    }

    if (!batch.empty()) {
      MeasureService::BatchOutcome tier = service_->RunBatch(std::move(batch));
      outcome->tier_stats.push_back(tier.stats);
      for (size_t b = 0; b < batch_pending.size(); ++b) {
        const Pending& pending = needed[batch_pending[b]];
        // batch order ascends by id, so the propagated error is
        // deterministically the lowest-id failure.
        if (!tier.results[b].ok()) return tier.results[b].status();
        outcome->candidates[pending.idx].result = *tier.results[b];
        memo_.try_emplace(pending.sig, MemoEntry{*tier.results[b], 0});
        TakeRef(candidates_[pending.idx], pending.sig);
      }
    } else {
      // All-warm tier: the replay walked it, the service never saw it.
      outcome->tier_stats.push_back(BatchStats{});
    }

    for (const Pending& pending : needed) {
      SessionCandidate& cand = outcome->candidates[pending.idx];
      cand.result.tier = static_cast<int>(t);
      if (cand.result.is_exact || pending.eps == final_eps[pending.idx]) {
        frozen[pending.idx] = true;
      }
    }

    // Prune: drop every unfinished candidate whose upper bound falls
    // strictly below the k-th largest lower bound among the active
    // candidates (finished ones included — their tight intervals only
    // sharpen the threshold). A pure function of the tier-t estimates:
    // ties keep candidates, and the k holders of the top lower bounds
    // always survive — the active set can never shrink below min(n, k).
    std::vector<double> lower;
    lower.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) lower.push_back(outcome->candidates[i].result.ci_lo);
    }
    int64_t pruned_this_tier = 0;
    if (lower.size() > k) {
      std::nth_element(lower.begin(), lower.begin() + (k - 1), lower.end(),
                       std::greater<double>());
      const double threshold = lower[k - 1];
      for (size_t i = 0; i < n; ++i) {
        if (active[i] && !frozen[i] &&
            outcome->candidates[i].result.ci_hi < threshold) {
          active[i] = false;
          outcome->candidates[i].pruned = true;
          ++pruned_this_tier;
        }
      }
    }
    static obs::Counter* const m_pruned =
        obs::MetricsRegistry::Global().counter("ranking.pruned");
    m_pruned->Inc(pruned_this_tier);
    if (tier_span.recording()) {
      int64_t survivors = 0;
      for (size_t i = 0; i < n; ++i) survivors += active[i] ? 1 : 0;
      tier_span.Annotate("pruned", static_cast<double>(pruned_this_tier));
      tier_span.Annotate("survivors", static_cast<double>(survivors));
    }

    // Context for the next tier, from this tier's estimates alone.
    prev_vk = KthLargestValue(outcome->candidates, active, k);
    have_cut = true;
    if (adaptive && tier_eps.has_value()) {
      tier_eps = NextAdaptiveEps(t, *tier_eps, options_, outcome->candidates,
                                 active, frozen, final_eps, k);
    }
  }

  // Final ranking over the survivors, all of which hold final-precision
  // estimates by now: sort by estimate, ties by ascending id.
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ea = outcome->candidates[a].result.value;
    const double eb = outcome->candidates[b].result.value;
    if (ea != eb) return ea > eb;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  outcome->top_k.reserve(order.size());
  for (size_t i : order) outcome->top_k.push_back(outcome->candidates[i].id);
  for (size_t i = 0; i < n; ++i) outcome->candidates[i].frozen = frozen[i];
  for (const BatchStats& stats : outcome->tier_stats) {
    outcome->total_sampling_steps += stats.sampling_steps;
  }
  return util::Status::OK();
}

util::StatusOr<RerankOutcome> RankingSession::Rerank(RankingDelta delta) {
  static obs::Counter* const m_reranks =
      obs::MetricsRegistry::Global().counter("ranking.reranks");
  static obs::Counter* const m_warm_hits =
      obs::MetricsRegistry::Global().counter("ranking.warm_hits");
  obs::Span span("ranking.rerank");
  m_reranks->Inc();
  MUDB_RETURN_IF_ERROR(ValidateRankingOptions(options_));
  RerankOutcome outcome;
  MUDB_RETURN_IF_ERROR(ApplyDelta(std::move(delta), &outcome));
  MUDB_RETURN_IF_ERROR(RunLadder(&outcome));
  for (size_t i = 0; i < candidates_.size(); ++i) {
    candidates_[i].last = outcome.candidates[i];
    candidates_[i].ranked = true;
  }
  m_warm_hits->Inc(outcome.warm_hits);
  outcome.trace_id = span.context().trace_id;
  if (span.recording()) {
    span.Annotate("candidates", static_cast<double>(candidates_.size()));
    span.Annotate("evaluations", static_cast<double>(outcome.evaluations));
    span.Annotate("warm_hits", static_cast<double>(outcome.warm_hits));
    span.Annotate("invalidated", static_cast<double>(outcome.invalidated));
  }
  return outcome;
}

}  // namespace mudb::service
