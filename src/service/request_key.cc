#include "src/service/request_key.h"

#include "src/util/fingerprint.h"

namespace mudb::service {

namespace {

constexpr uint64_t kRequestDomain = 0xB0D1'E5C0'FFEE'0003ull;

// Section markers: streams of different shapes must not collide by
// concatenation coincidences.
constexpr uint64_t kAtomMarker = 0x61;
constexpr uint64_t kNodeMarker = 0x62;
constexpr uint64_t kOptionsMarker = 0x63;

void AbsorbPolynomial(const poly::Polynomial& p,
                      util::FingerprintHasher* hasher) {
  // terms() is an ordered map, so iteration — and the stream — is canonical.
  hasher->Absorb(p.terms().size());
  for (const auto& [monomial, coeff] : p.terms()) {
    hasher->Absorb(monomial.size());
    for (uint32_t e : monomial) hasher->Absorb(e);
    hasher->AbsorbDouble(coeff);
  }
}

void AbsorbFormula(const constraints::RealFormula& f,
                   util::FingerprintHasher* hasher) {
  using Kind = constraints::RealFormula::Kind;
  hasher->Absorb(kNodeMarker);
  hasher->Absorb(static_cast<uint64_t>(f.kind()));
  switch (f.kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kAtom:
      hasher->Absorb(kAtomMarker);
      hasher->Absorb(static_cast<uint64_t>(f.atom().op));
      AbsorbPolynomial(f.atom().poly, hasher);
      return;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      hasher->Absorb(f.children().size());
      for (const auto& child : f.children()) AbsorbFormula(child, hasher);
      return;
  }
}

}  // namespace

convex::CanonicalBodyKey RequestSignature(
    const constraints::RealFormula& formula,
    const measure::MeasureOptions& options) {
  util::FingerprintHasher hasher(kRequestDomain);
  AbsorbFormula(formula, &hasher);
  hasher.Absorb(kOptionsMarker);
  hasher.Absorb(static_cast<uint64_t>(options.method));
  hasher.AbsorbDouble(options.epsilon);
  hasher.AbsorbDouble(options.delta);
  hasher.Absorb(options.seed);
  hasher.Absorb(static_cast<uint64_t>(options.use_z3_shortcuts));
  hasher.Absorb(static_cast<uint64_t>(options.restrict_to_used_vars));
  hasher.Absorb(static_cast<uint64_t>(
      static_cast<int64_t>(options.exact_order_max_vars)));
  hasher.Absorb(static_cast<uint64_t>(options.max_dnf_disjuncts));
  // num_threads / pool / body_cache are deliberately absent: the
  // determinism contract guarantees they cannot change a result.
  return convex::CanonicalBodyKey{hasher.Digest()};
}

}  // namespace mudb::service
