// The shard transport seam of the sharded serving fabric.
//
// ShardedMeasureService (sharded_service.h) never talks to its shard
// workers directly: every delivery goes through a ShardTransport, so the
// *protocol* — routing, retry on transient failure, deadlines, degradation
// — is written against an interface that an eventual network transport can
// implement, while today's implementations stay in-process:
//
//   * InProcessShardTransport delivers to a fixed set of MeasureService
//     workers (one Submit + Wait per call, synchronous to the caller);
//   * FaultInjectingTransport decorates any transport with a deterministic
//     FaultInjector: a call may be delayed (latency spike) and/or rejected
//     with a transient, retryable kUnavailable *before* it reaches the
//     shard — exactly where a network failure would strike, so the shard's
//     caches never observe the fault.
//
// Contract every implementation must keep: a call either returns the
// shard's result unchanged or a Status that classifies correctly under
// util::Status::IsRetryable() (transient delivery failures are retryable;
// the shard's own permanent errors pass through). Transports never mutate
// the request, so a retry delivers byte-identical content.

#ifndef MUDB_SRC_SERVICE_SHARD_TRANSPORT_H_
#define MUDB_SRC_SERVICE_SHARD_TRANSPORT_H_

#include <vector>

#include "src/measure/measure.h"
#include "src/service/fault_injector.h"
#include "src/service/measure_service.h"
#include "src/util/status.h"

namespace mudb::service {

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Delivers `request` to `shard` and returns its result. Synchronous:
  /// callers that want overlap issue calls from their own workers.
  virtual util::StatusOr<measure::MeasureResult> Call(
      int shard, const MeasureRequest& request) = 0;

  virtual int num_shards() const = 0;
};

/// Delivery to in-process MeasureService workers (borrowed, not owned).
class InProcessShardTransport : public ShardTransport {
 public:
  explicit InProcessShardTransport(std::vector<MeasureService*> shards)
      : shards_(std::move(shards)) {}

  util::StatusOr<measure::MeasureResult> Call(
      int shard, const MeasureRequest& request) override;

  int num_shards() const override { return static_cast<int>(shards_.size()); }

 private:
  std::vector<MeasureService*> shards_;
};

/// Decorator: consults `injector` before delegating. Injected failures
/// return kUnavailable with the shard id stamped in the structured context;
/// injected latency sleeps before the call proceeds.
class FaultInjectingTransport : public ShardTransport {
 public:
  /// Both pointers are borrowed and must outlive the transport.
  FaultInjectingTransport(ShardTransport* wrapped, FaultInjector* injector)
      : wrapped_(wrapped), injector_(injector) {}

  util::StatusOr<measure::MeasureResult> Call(
      int shard, const MeasureRequest& request) override;

  int num_shards() const override { return wrapped_->num_shards(); }

 private:
  ShardTransport* wrapped_;
  FaultInjector* injector_;
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_SHARD_TRANSPORT_H_
