// Canonical signatures for whole measurement requests.
//
// A request's result — grounded formula × measurement options — is a pure
// function of (formula content, method, ε, δ, seed, engine knobs): the
// randomized engines derive every sample path from the seed, never from
// wall-clock, scheduling, or thread count. RequestSignature captures exactly
// that function's domain as a 128-bit key, which is what lets the service
// memoize full results (a repeated candidate skips sampling entirely) while
// staying bit-identical to sequential evaluation.
//
// Deliberately EXCLUDED from the signature: num_threads and the pool/cache
// pointers. The determinism contract (BUILDING.md, "Threading") guarantees
// they cannot change a result, so folding them in would only fragment the
// cache.

#ifndef MUDB_SRC_SERVICE_REQUEST_KEY_H_
#define MUDB_SRC_SERVICE_REQUEST_KEY_H_

#include "src/constraints/real_formula.h"
#include "src/convex/canonical.h"
#include "src/measure/measure.h"

namespace mudb::service {

/// The canonical key of (formula, options): equal keys imply bit-identical
/// ComputeNu results. Formula content is keyed structurally — kinds, child
/// lists, comparison ops, and every monomial's exponents and exact
/// coefficient bits — so structurally equal formulae collide (that is the
/// dedup) and nothing is lost to decimal rendering. Boolean-equivalent but
/// structurally different formulae intentionally get distinct keys: their
/// sampled estimates differ, and the memo must never conflate them.
convex::CanonicalBodyKey RequestSignature(
    const constraints::RealFormula& formula,
    const measure::MeasureOptions& options);

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_REQUEST_KEY_H_
