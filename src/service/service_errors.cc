#include "src/service/service_errors.h"

#include <cstdio>
#include <utility>

namespace mudb::service {

std::string SignaturePrefix(const convex::CanonicalBodyKey& key) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "req:%08x",
                static_cast<unsigned>(key.fp.hi >> 32));
  return buf;
}

std::string CandidateRef(uint64_t id) {
  return "candidate " + std::to_string(id);
}

util::Status AnnotateRequestError(util::Status status,
                                  const convex::CanonicalBodyKey& signature,
                                  int shard_id, int attempts) {
  if (status.ok()) return status;
  std::string message = "[" + SignaturePrefix(signature);
  if (shard_id >= 0) message += " shard " + std::to_string(shard_id);
  message += "] " + status.message();
  util::Status annotated(status.code(), std::move(message));
  if (shard_id >= 0) annotated.WithShard(shard_id);
  if (attempts > 0) annotated.WithAttempts(attempts);
  // Preserve any context the inner layer already attached.
  if (shard_id < 0 && status.context().shard_id >= 0) {
    annotated.WithShard(status.context().shard_id);
  }
  if (attempts <= 0 && status.context().attempts > 0) {
    annotated.WithAttempts(status.context().attempts);
  }
  return annotated;
}

}  // namespace mudb::service
