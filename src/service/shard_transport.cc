#include "src/service/shard_transport.h"

#include <chrono>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mudb::service {

util::StatusOr<measure::MeasureResult> InProcessShardTransport::Call(
    int shard, const MeasureRequest& request) {
  MUDB_CHECK(shard >= 0 && shard < num_shards());
  // Copy: the router retries from the original request, and the worker's
  // Submit takes ownership.
  MeasureService::Ticket ticket =
      shards_[static_cast<size_t>(shard)]->Submit(request);
  return MeasureService::Wait(ticket);
}

util::StatusOr<measure::MeasureResult> FaultInjectingTransport::Call(
    int shard, const MeasureRequest& request) {
  static obs::Counter* const m_strikes =
      obs::MetricsRegistry::Global().counter("shard.fault.injected");
  static obs::Counter* const m_latency =
      obs::MetricsRegistry::Global().counter("shard.fault.latency_injected");
  FaultInjector::Decision decision = injector_->Decide(shard);
  if (decision.latency_ms > 0) {
    m_latency->Inc();
    obs::Span span("shard.fault.latency");
    if (span.recording()) {
      span.Annotate("shard", static_cast<double>(shard));
      span.Annotate("latency_ms", decision.latency_ms);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(decision.latency_ms));
  }
  if (decision.fail) {
    m_strikes->Inc();
    obs::Span span("shard.fault.strike");
    if (span.recording()) {
      span.Annotate("shard", static_cast<double>(shard));
    }
    return util::Status::Unavailable("injected transient fault")
        .WithShard(shard);
  }
  return wrapped_->Call(shard, request);
}

}  // namespace mudb::service
