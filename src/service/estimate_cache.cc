#include "src/service/estimate_cache.h"

namespace mudb::service {

EstimateCache::EstimateCache() : EstimateCache(Options()) {}

EstimateCache::EstimateCache(const Options& options)
    : cache_(options.capacity, options.shards) {
  // Every EstimateCache instance serves the same role (the per-body
  // estimate store), so they all publish into one stable metric family;
  // counts aggregate across instances, matching the process-wide registry
  // model. The struct counters (stats(), steps_saved()) stay per-instance.
  cache_.PublishMetrics("service.body_cache");
  metric_steps_saved_ =
      obs::MetricsRegistry::Global().counter("service.body_cache.steps_saved");
}

std::optional<volume::CachedBodyEstimate> EstimateCache::Lookup(
    const convex::CanonicalBodyKey& key) {
  std::optional<volume::CachedBodyEstimate> hit = cache_.Lookup(key);
  if (hit.has_value()) {
    steps_saved_.fetch_add(hit->steps, std::memory_order_relaxed);
    metric_steps_saved_->Inc(hit->steps);
  }
  return hit;
}

void EstimateCache::Insert(const convex::CanonicalBodyKey& key,
                           const volume::CachedBodyEstimate& estimate) {
  cache_.Insert(key, estimate);
}

void EstimateCache::Clear() {
  // Reset the derived counter with the underlying cache: after a Clear,
  // steps_saved() must not report savings from an epoch whose hit/miss
  // counters are gone (hit-rate and steps-saved reporting would disagree).
  // The registry mirrors are cumulative by design and are not reset.
  cache_.Clear();
  steps_saved_.store(0, std::memory_order_relaxed);
}

}  // namespace mudb::service
