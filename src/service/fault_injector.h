// Deterministic fault injection for the in-process shard fabric.
//
// The sharded router's protocol — routing, retry, backoff, deadline,
// degradation — must be proven correct without real networking, so faults
// are injected at the shard transport seam (shard_transport.h) from a
// seeded schedule instead of from real failures. Two fault sources compose:
//
//   * a *seeded random schedule*: shard s's i-th transport call consults a
//     decision that is a pure function of (seed, s, i) — per-call transient
//     kUnavailable with probability `unavailable_rate`, and latency spikes
//     with probability `latency_rate`. Replaying a run with the same seed
//     and per-shard call orders replays the exact fault sequence;
//   * *explicit controls* for targeted tests: FailNext(shard, k) makes the
//     next k calls on a shard fail, SetDown(shard) fails every call until
//     cleared — the "shard crashed / shard rebooted" story.
//
// What fault injection can never do: change result bits. Faults live
// entirely outside the shard workers, so a request that ultimately succeeds
// (directly, after retries, or via degradation) returns the same bitwise
// result as a run with no faults at all — the chaos test
// (sharded_service_test.cc) hard-asserts this across schedules.
//
// Thread-safety: per-shard state under a per-shard mutex; safe for
// concurrent Decide calls from any number of router workers. With
// concurrent callers the assignment of schedule positions to requests
// follows arrival order at the shard — the schedule itself stays fixed.

#ifndef MUDB_SRC_SERVICE_FAULT_INJECTOR_H_
#define MUDB_SRC_SERVICE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/rng.h"

namespace mudb::service {

struct FaultInjectorOptions {
  /// Root seed of the per-shard decision streams (shard s draws from
  /// Rng(seed).Split(s), so schedules are independent across shards).
  uint64_t seed = 1;
  /// Probability that a call fails with transient kUnavailable.
  double unavailable_rate = 0.0;
  /// Probability that a call is delayed by `latency_spike_ms` first. A
  /// delayed call can still fail: the draws are independent.
  double latency_rate = 0.0;
  /// Injected delay per latency spike.
  double latency_spike_ms = 1.0;
};

class FaultInjector {
 public:
  /// What the transport must do with one call.
  struct Decision {
    /// Fail this call with kUnavailable instead of delivering it.
    bool fail = false;
    /// Sleep this long before delivering (or failing) the call.
    double latency_ms = 0.0;
  };

  FaultInjector(int num_shards, const FaultInjectorOptions& options);

  /// The decision for the next call on `shard`. Thread-safe.
  Decision Decide(int shard);

  /// The next `k` calls on `shard` fail with kUnavailable (on top of the
  /// random schedule; explicit controls are consulted first).
  void FailNext(int shard, int k);
  /// While down, every call on `shard` fails. Models a crashed shard; clear
  /// with `down = false` to model its recovery.
  void SetDown(int shard, bool down);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Total calls failed / delayed so far (all shards).
  int64_t injected_failures() const {
    return injected_failures_.load(std::memory_order_relaxed);
  }
  int64_t injected_latency_spikes() const {
    return injected_latency_spikes_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardState {
    std::mutex mu;
    util::Rng rng{0};    // per-shard decision stream; guarded by mu
    int fail_next = 0;   // guarded by mu
    bool down = false;   // guarded by mu
  };

  FaultInjectorOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<int64_t> injected_failures_{0};
  std::atomic<int64_t> injected_latency_spikes_{0};
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_FAULT_INJECTOR_H_
