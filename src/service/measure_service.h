// MeasureService: the measurement serving layer.
//
// Real workloads evaluate the paper's μ(q, D, (a,s)) for *many* candidate
// tuples over one database, and those requests share almost all of their
// constraint geometry. The service amortizes that sharing:
//
//   * every grounded constraint system is canonicalized into
//     content-addressed keys (convex/canonical.h), and identical convex
//     bodies are deduplicated within and across requests through a sharded,
//     size-bounded EstimateCache — each unique body is sampled once per
//     (ε tier, seed path), then every later occurrence is a cache hit;
//   * whole results are memoized by request signature (request_key.h), so a
//     repeated candidate skips sampling entirely;
//   * requests are accepted asynchronously (Submit returns a future-style
//     Ticket; Wait blocks for one result) and executed by a dispatcher
//     thread that runs each request's estimator on the shared
//     util::ThreadPool — the same parallel sampling runtime the direct API
//     uses.
//
// Determinism contract: a batch of N requests returns results bit-identical
// to N sequential ComputeNu / ComputeMeasure calls with the same per-request
// options, for any thread count, any submission order, any batch
// composition, and any cache state. This holds because every cached value
// is a pure function of its key (see estimate_cache.h) and requests are
// mutually independent. `service_test.cc` locks the contract in.
//
// Lifetimes: query-path requests borrow the Query/Database; keep them alive
// until the request's result is returned. The service owns its caches and
// (unless given an external one) its thread pool.

#ifndef MUDB_SRC_SERVICE_MEASURE_SERVICE_H_
#define MUDB_SRC_SERVICE_MEASURE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/constraints/real_formula.h"
#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/model/database.h"
#include "src/obs/trace.h"
#include "src/service/estimate_cache.h"
#include "src/service/request_key.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace mudb::service {

struct RankingOptions;  // ranking_service.h
struct RankingOutcome;

struct ServiceOptions {
  /// Worker threads for the estimators (0 or negative = all hardware
  /// threads). Results are bit-identical for any value.
  int num_threads = 1;
  /// Optional external pool (not owned; the service is its only submitter
  /// while running). When null the service owns a pool of num_threads.
  util::ThreadPool* pool = nullptr;
  /// Per-body estimate cache sizing (see EstimateCache::Options).
  size_t body_cache_capacity = 4096;
  /// Request-result memo sizing.
  size_t result_cache_capacity = 4096;
  /// Shards for both caches (rounded up to a power of two).
  int cache_shards = 8;
  /// Identity of this service inside a sharded fabric (sharded_service.h):
  /// >= 0 makes every error this service produces carry the shard id, both
  /// in the message and in the structured util::StatusContext payload, so
  /// batch failures are attributable. -1 (the default) = unsharded; error
  /// messages then stay byte-identical to the direct ComputeNu path.
  int shard_id = -1;
};

/// One measurement request: a pre-grounded formula, or a (query, database,
/// candidate) triple grounded by the service. Exactly one of the two forms.
struct MeasureRequest {
  /// Form 1: evaluate ν(formula).
  std::optional<constraints::RealFormula> formula;
  /// Form 2: evaluate μ(query, db, candidate). Borrowed, not owned.
  const logic::Query* query = nullptr;
  const model::Database* db = nullptr;
  model::Tuple candidate;
  /// Per-request engine options (method, ε/δ, seed, ...). The service fills
  /// in pool and body_cache; num_threads cannot change results.
  measure::MeasureOptions options;

  static MeasureRequest Nu(constraints::RealFormula f,
                           measure::MeasureOptions opts = {}) {
    MeasureRequest r;
    r.formula = std::move(f);
    r.options = opts;
    return r;
  }
  static MeasureRequest Mu(const logic::Query* q, const model::Database* d,
                           model::Tuple cand,
                           measure::MeasureOptions opts = {}) {
    MeasureRequest r;
    r.query = q;
    r.db = d;
    r.candidate = std::move(cand);
    r.options = opts;
    return r;
  }
};

/// Per-batch accounting, aggregated from MeasureResult /
/// FprasResult-derived counters of the requests the batch executed.
struct BatchStats {
  int64_t requests = 0;
  /// Requests answered from the result memo (zero sampling performed).
  int64_t request_cache_hits = 0;
  /// Unique-body volume estimates served by the body cache (executed
  /// requests only).
  int64_t body_cache_hits = 0;
  /// Convex bodies entering FPRAS unions, before / after canonical dedup.
  int64_t bodies = 0;
  int64_t unique_bodies = 0;
  /// Hit-and-run steps actually sampled by this batch.
  int64_t sampling_steps = 0;
  /// Direction samples drawn by AFPRAS-family engines in this batch.
  int64_t samples = 0;
  /// Wall time of the whole batch (submission to last result).
  double wall_ms = 0.0;
};

class MeasureService {
 public:
  /// A future-style handle for one submitted request.
  using Ticket = std::future<util::StatusOr<measure::MeasureResult>>;

  explicit MeasureService(const ServiceOptions& options = {});
  /// Drains outstanding requests, then joins the dispatcher.
  ~MeasureService();

  MeasureService(const MeasureService&) = delete;
  MeasureService& operator=(const MeasureService&) = delete;

  /// Enqueues one request; returns immediately. Thread-safe.
  Ticket Submit(MeasureRequest request);

  /// Blocks until `ticket`'s request completes and returns its result.
  static util::StatusOr<measure::MeasureResult> Wait(Ticket& ticket) {
    return ticket.get();
  }

  /// Submits every request, waits for all of them, and reports per-batch
  /// accounting. Results are positionally aligned with `requests` and
  /// bit-identical to sequential ComputeNu/ComputeMeasure calls with the
  /// same per-request options. The stats delta is attributed to this batch;
  /// attribute precisely by not interleaving concurrent Submits with a
  /// RunBatch call.
  struct BatchOutcome {
    std::vector<util::StatusOr<measure::MeasureResult>> results;
    BatchStats stats;
    /// Flight-recorder handle: the trace id of the batch's span tree when
    /// tracing was enabled (obs::CollectTrace(trace_id) fetches it), 0
    /// otherwise. Carries no result data — purely an index into obs.
    uint64_t trace_id = 0;
  };
  BatchOutcome RunBatch(std::vector<MeasureRequest> requests);

  /// Adaptive-precision top-k ranking over this service's caches: walks an
  /// ε-ladder, pruning candidates whose confidence interval falls below
  /// the k-th best, so most candidates never pay for the final precision.
  /// One batch per tier (defined in ranking_service.cc; see RankingService
  /// for the ladder, δ-split, and determinism contract).
  util::StatusOr<RankingOutcome> RunTopK(
      std::vector<MeasureRequest> candidates, const RankingOptions& options);

  /// Cache introspection (cheap; safe to call any time).
  CacheStats body_cache_stats() const { return body_cache_.stats(); }
  int64_t body_cache_steps_saved() const { return body_cache_.steps_saved(); }
  CacheStats result_cache_stats() const { return result_cache_.stats(); }
  /// Lifetime totals over every request the service executed (the same
  /// counters BatchStats reports per batch).
  BatchStats lifetime_stats() const;

 private:
  struct Job {
    MeasureRequest request;
    std::promise<util::StatusOr<measure::MeasureResult>> promise;
    /// Submitter's span context, adopted by the dispatcher so the request's
    /// spans parent under the submitting batch/tier span.
    obs::SpanContext ctx;
  };
  /// A memoized result plus what it cost originally (replays are free).
  struct MemoEntry {
    measure::MeasureResult result;
  };

  void DispatcherLoop();
  util::StatusOr<measure::MeasureResult> Process(MeasureRequest& request);
  /// Stamps the shard id onto pre-signature errors (validation, grounding)
  /// when this service runs inside a sharded fabric; pass-through when
  /// unsharded, keeping those messages byte-identical to the direct path.
  util::Status Attribute(util::Status status) const;

  ServiceOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;  // owned_pool_.get() or options_.pool
  EstimateCache body_cache_;
  ShardedLruCache<MemoEntry> result_cache_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;  // guarded by mu_
  bool stop_ = false;      // guarded by mu_

  // Lifetime counters, written only by the dispatcher thread.
  std::atomic<int64_t> total_requests_{0};
  std::atomic<int64_t> total_request_cache_hits_{0};
  std::atomic<int64_t> total_body_cache_hits_{0};
  std::atomic<int64_t> total_bodies_{0};
  std::atomic<int64_t> total_unique_bodies_{0};
  std::atomic<int64_t> total_sampling_steps_{0};
  std::atomic<int64_t> total_samples_{0};

  // mudb-lint: allow(no-raw-thread) -- documented dispatcher storage;
  // the control thread never touches sampling grids or substreams.
  std::thread dispatcher_;  // last member: started after everything above
};

}  // namespace mudb::service

#endif  // MUDB_SRC_SERVICE_MEASURE_SERVICE_H_
