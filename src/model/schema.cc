#include "src/model/schema.h"

#include <sstream>

namespace mudb::model {

std::optional<size_t> RelationSchema::ColumnIndex(
    const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t RelationSchema::num_base_columns() const {
  size_t n = 0;
  for (const ColumnDef& c : columns_) {
    if (c.sort == Sort::kBase) ++n;
  }
  return n;
}

size_t RelationSchema::num_numeric_columns() const {
  return columns_.size() - num_base_columns();
}

util::Status RelationSchema::ValidateTuple(
    const std::vector<Value>& tuple) const {
  if (tuple.size() != columns_.size()) {
    return util::Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match " +
        name_ + " arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].sort() != columns_[i].sort) {
      return util::Status::InvalidArgument(
          "value " + tuple[i].ToString() + " has sort " +
          SortToString(tuple[i].sort()) + " but column " + columns_[i].name +
          " of " + name_ + " has sort " + SortToString(columns_[i].sort));
    }
  }
  return util::Status::OK();
}

std::string RelationSchema::ToString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].name << ":" << SortToString(columns_[i].sort);
  }
  out << ")";
  return out.str();
}

}  // namespace mudb::model
