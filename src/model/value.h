// Values of the two-sorted incomplete data model (Section 3 of the paper).
//
// A database entry is one of:
//   - a base-type constant (an element of C_base; represented as a string),
//   - a numeric constant (an element of C_num ⊆ R; represented as a double),
//   - a marked base-type null ⊥_i (i is the mark),
//   - a marked numeric null ⊤_i.

#ifndef MUDB_SRC_MODEL_VALUE_H_
#define MUDB_SRC_MODEL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>

namespace mudb::model {

/// The two column sorts of the data model.
enum class Sort {
  kBase,  ///< uninterpreted base type (equality only)
  kNum,   ///< numeric type (interpreted over R with +, ·, <)
};

const char* SortToString(Sort sort);

/// Identifier of a marked null. Nulls with equal ids denote the same unknown
/// value; base and numeric nulls live in disjoint id spaces.
using NullId = uint32_t;

/// A single database entry. Value is a regular (copyable, equality-comparable,
/// hashable) type; equality is syntactic (a null equals only the same null).
class Value {
 public:
  enum class Kind {
    kBaseConst,
    kNumConst,
    kBaseNull,
    kNumNull,
  };

  /// Default: the numeric constant 0 (needed by container resizing; prefer
  /// the named factories below).
  Value() : kind_(Kind::kNumConst) {}

  /// Factory functions, so call sites say what they create.
  static Value BaseConst(std::string s) {
    Value v;
    v.kind_ = Kind::kBaseConst;
    v.str_ = std::move(s);
    return v;
  }
  static Value NumConst(double d) {
    Value v;
    v.kind_ = Kind::kNumConst;
    v.num_ = d;
    return v;
  }
  static Value BaseNull(NullId id) {
    Value v;
    v.kind_ = Kind::kBaseNull;
    v.null_id_ = id;
    return v;
  }
  static Value NumNull(NullId id) {
    Value v;
    v.kind_ = Kind::kNumNull;
    v.null_id_ = id;
    return v;
  }

  Kind kind() const { return kind_; }
  Sort sort() const {
    return (kind_ == Kind::kBaseConst || kind_ == Kind::kBaseNull)
               ? Sort::kBase
               : Sort::kNum;
  }
  bool is_null() const {
    return kind_ == Kind::kBaseNull || kind_ == Kind::kNumNull;
  }
  bool is_const() const { return !is_null(); }

  /// The base constant; requires kind() == kBaseConst.
  const std::string& base_const() const;
  /// The numeric constant; requires kind() == kNumConst.
  double num_const() const;
  /// The null mark; requires is_null().
  NullId null_id() const;

  /// Syntactic equality: constants compare by value, nulls by (sort, id).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Arbitrary total order, usable as a map key.
  bool operator<(const Value& other) const;

  /// Human-readable form: "abc", 3.5, ⊥2, ⊤7.
  std::string ToString() const;

  size_t Hash() const;

 private:
  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  NullId null_id_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mudb::model

#endif  // MUDB_SRC_MODEL_VALUE_H_
