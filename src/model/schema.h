// Relation schemas: typed column lists (Section 3, "R(base^k num^m)").
//
// Unlike the paper's notational convention, columns of different sorts may be
// interleaved freely, as in real DDL.

#ifndef MUDB_SRC_MODEL_SCHEMA_H_
#define MUDB_SRC_MODEL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/value.h"
#include "src/util/status.h"

namespace mudb::model {

/// A named, typed column.
struct ColumnDef {
  std::string name;
  Sort sort;
};

/// The schema of one relation: its name and ordered column list.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Number of base-sorted columns.
  size_t num_base_columns() const;
  /// Number of numeric columns.
  size_t num_numeric_columns() const;

  /// Checks that a tuple of values matches this schema's sorts and arity.
  util::Status ValidateTuple(const std::vector<Value>& tuple) const;

  /// "R(id:base, price:num)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace mudb::model

#endif  // MUDB_SRC_MODEL_SCHEMA_H_
