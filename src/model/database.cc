#include "src/model/database.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace mudb::model {

util::Status Relation::Insert(Tuple tuple) {
  MUDB_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  tuples_.push_back(std::move(tuple));
  return util::Status::OK();
}

util::Status Relation::InsertDistinct(Tuple tuple) {
  MUDB_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  if (std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end()) {
    return util::Status::OK();
  }
  tuples_.push_back(std::move(tuple));
  return util::Status::OK();
}

util::Status Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name();
  if (relations_.find(name) != relations_.end()) {
    return util::Status::InvalidArgument("relation already exists: " + name);
  }
  relations_.emplace(name, Relation(std::move(schema)));
  return util::Status::OK();
}

util::StatusOr<const Relation*> Database::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::Status::NotFound("no relation named " + name);
  }
  return &it->second;
}

util::StatusOr<Relation*> Database::GetMutableRelation(
    const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::Status::NotFound("no relation named " + name);
  }
  return &it->second;
}

util::Status Database::Insert(const std::string& relation, Tuple tuple) {
  MUDB_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(relation));
  return rel->Insert(std::move(tuple));
}

namespace {

std::vector<NullId> CollectNullIds(const Database& db, Value::Kind kind) {
  std::vector<NullId> ids;
  std::unordered_set<NullId> seen;
  for (const auto& [name, rel] : db.relations()) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) {
        if (v.kind() == kind && seen.insert(v.null_id()).second) {
          ids.push_back(v.null_id());
        }
      }
    }
  }
  return ids;
}

}  // namespace

std::vector<NullId> Database::CollectNumNullIds() const {
  return CollectNullIds(*this, Value::Kind::kNumNull);
}

std::vector<NullId> Database::CollectBaseNullIds() const {
  return CollectNullIds(*this, Value::Kind::kBaseNull);
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

std::string Database::ToString() const {
  std::ostringstream out;
  for (const auto& [name, rel] : relations_) {
    out << rel.schema().ToString() << " [" << rel.size() << " tuples]\n";
    for (const Tuple& t : rel.tuples()) {
      out << "  (";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << ", ";
        out << t[i];
      }
      out << ")\n";
    }
  }
  return out.str();
}

Value Valuation::Apply(const Value& v) const {
  if (v.kind() == Value::Kind::kBaseNull) {
    auto it = base_.find(v.null_id());
    if (it != base_.end()) return Value::BaseConst(it->second);
  } else if (v.kind() == Value::Kind::kNumNull) {
    auto it = num_.find(v.null_id());
    if (it != num_.end()) return Value::NumConst(it->second);
  }
  return v;
}

Tuple Valuation::Apply(const Tuple& t) const {
  Tuple out;
  out.reserve(t.size());
  for (const Value& v : t) out.push_back(Apply(v));
  return out;
}

Database Valuation::Apply(const Database& db) const {
  Database out;
  for (const auto& [name, rel] : db.relations()) {
    MUDB_CHECK(out.CreateRelation(rel.schema()).ok());
    Relation* dst = out.GetMutableRelation(name).value();
    for (const Tuple& t : rel.tuples()) {
      MUDB_CHECK(dst->Insert(Apply(t)).ok());
    }
  }
  return out;
}

Valuation MakeBijectiveBaseValuation(
    const Database& db, const std::string& prefix,
    const std::vector<NullId>& extra_base_ids) {
  // Ensure the range is disjoint from C_base(D): extend the prefix until no
  // base constant in the database starts with it.
  std::string safe_prefix = prefix;
  bool collision = true;
  while (collision) {
    collision = false;
    for (const auto& [name, rel] : db.relations()) {
      for (const Tuple& t : rel.tuples()) {
        for (const Value& v : t) {
          if (v.kind() == Value::Kind::kBaseConst &&
              v.base_const().rfind(safe_prefix, 0) == 0) {
            collision = true;
          }
        }
      }
      if (collision) break;
    }
    if (collision) safe_prefix += "_";
  }
  Valuation val;
  for (NullId id : db.CollectBaseNullIds()) {
    val.SetBase(id, safe_prefix + std::to_string(id));
  }
  for (NullId id : extra_base_ids) {
    if (val.base_map().find(id) == val.base_map().end()) {
      val.SetBase(id, safe_prefix + std::to_string(id));
    }
  }
  return val;
}

}  // namespace mudb::model
