// Incomplete databases: relations over values-with-nulls, plus null
// bookkeeping (N_base(D), N_num(D)) and valuations (Section 2/4).

#ifndef MUDB_SRC_MODEL_DATABASE_H_
#define MUDB_SRC_MODEL_DATABASE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/model/schema.h"
#include "src/model/value.h"
#include "src/util/status.h"

namespace mudb::model {

/// A tuple of values (may contain nulls of either sort).
using Tuple = std::vector<Value>;

/// One relation instance: a schema and a bag of tuples. (The paper's
/// relations are sets; InsertDistinct gives set semantics when needed.)
class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Appends a tuple after validating sorts against the schema.
  util::Status Insert(Tuple tuple);
  /// Appends a tuple unless an identical tuple is already present.
  util::Status InsertDistinct(Tuple tuple);

 private:
  RelationSchema schema_;
  std::vector<Tuple> tuples_;
};

/// An incomplete database: named relations plus factories for fresh nulls.
///
/// Null ids handed out by MakeBaseNull()/MakeNumNull() are unique within the
/// database; the translation to real-closed-field formulae (Prop. 5.3)
/// assigns variable z_i to numeric null ⊤_i in first-appearance order.
class Database {
 public:
  Database() = default;

  /// Creates an empty relation. Fails if the name is already taken.
  util::Status CreateRelation(RelationSchema schema);

  /// Looks up a relation; NotFound if absent.
  util::StatusOr<const Relation*> GetRelation(const std::string& name) const;
  util::StatusOr<Relation*> GetMutableRelation(const std::string& name);

  /// Inserts into an existing relation.
  util::Status Insert(const std::string& relation, Tuple tuple);

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Fresh marked nulls.
  Value MakeBaseNull() { return Value::BaseNull(next_base_null_++); }
  Value MakeNumNull() { return Value::NumNull(next_num_null_++); }

  /// Numeric null ids appearing anywhere in the database, in first-appearance
  /// order (scan order: relation name, tuple index, column index). The
  /// position of an id in this vector is its variable index z_i.
  std::vector<NullId> CollectNumNullIds() const;
  /// Base null ids appearing anywhere in the database, in scan order.
  std::vector<NullId> CollectBaseNullIds() const;

  /// Total number of tuples across relations.
  size_t TotalTuples() const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
  NullId next_base_null_ = 0;
  NullId next_num_null_ = 0;
};

/// A valuation v = (v_base, v_num): base nulls -> base constants, numeric
/// nulls -> reals. Applying it to a tuple/database replaces nulls (Section 4).
class Valuation {
 public:
  void SetBase(NullId id, std::string constant) {
    base_[id] = std::move(constant);
  }
  void SetNum(NullId id, double value) { num_[id] = value; }

  /// Replaces nulls in `v`; nulls without an assignment are left in place.
  Value Apply(const Value& v) const;
  Tuple Apply(const Tuple& t) const;
  /// Applies to every tuple of every relation; the result may still be
  /// incomplete if the valuation is partial.
  Database Apply(const Database& db) const;

  const std::unordered_map<NullId, std::string>& base_map() const {
    return base_;
  }
  const std::unordered_map<NullId, double>& num_map() const { return num_; }

 private:
  std::unordered_map<NullId, std::string> base_;
  std::unordered_map<NullId, double> num_;
};

/// A bijective base valuation w.r.t. a database (Prop. 5.2): maps each base
/// null ⊥_i to the fresh constant "<prefix><i>", distinct from every base
/// constant in D and from each other. Under such a valuation μ is unchanged,
/// which lets every engine ignore base nulls. `extra_base_ids` adds mappings
/// for base nulls outside the database (e.g. in a candidate tuple, which the
/// permissive semantics of [28] allows).
Valuation MakeBijectiveBaseValuation(
    const Database& db, const std::string& prefix = "@null_",
    const std::vector<NullId>& extra_base_ids = {});

}  // namespace mudb::model

#endif  // MUDB_SRC_MODEL_DATABASE_H_
