#include "src/model/value.h"

#include <cmath>
#include <sstream>

#include "src/util/status.h"

namespace mudb::model {

const char* SortToString(Sort sort) {
  return sort == Sort::kBase ? "base" : "num";
}

const std::string& Value::base_const() const {
  MUDB_CHECK(kind_ == Kind::kBaseConst);
  return str_;
}

double Value::num_const() const {
  MUDB_CHECK(kind_ == Kind::kNumConst);
  return num_;
}

NullId Value::null_id() const {
  MUDB_CHECK(is_null());
  return null_id_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kBaseConst:
      return str_ == other.str_;
    case Kind::kNumConst:
      return num_ == other.num_;
    case Kind::kBaseNull:
    case Kind::kNumNull:
      return null_id_ == other.null_id_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kBaseConst:
      return str_ < other.str_;
    case Kind::kNumConst:
      return num_ < other.num_;
    case Kind::kBaseNull:
    case Kind::kNumNull:
      return null_id_ < other.null_id_;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kBaseConst:
      return str_;
    case Kind::kNumConst: {
      std::ostringstream out;
      out << num_;
      return out.str();
    }
    case Kind::kBaseNull:
      return "\xE2\x8A\xA5" + std::to_string(null_id_);  // ⊥i
    case Kind::kNumNull:
      return "\xE2\x8A\xA4" + std::to_string(null_id_);  // ⊤i
  }
  return "?";
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9E3779B97F4A7C15ull;
  switch (kind_) {
    case Kind::kBaseConst:
      h ^= std::hash<std::string>()(str_);
      break;
    case Kind::kNumConst:
      h ^= std::hash<double>()(num_);
      break;
    case Kind::kBaseNull:
    case Kind::kNumNull:
      h ^= std::hash<NullId>()(null_id_) * 0xFF51AFD7ED558CCDull;
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace mudb::model
