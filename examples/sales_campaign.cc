// The paper's introduction example, end to end.
//
// The campaign database has Products{(id1,s,10,0.8), (id2,s,⊤',0.7)},
// Competition{(c,s,⊤)} and Excluded{(⊥'',s)}. The analyst asks for market
// segments with a competitive advantage:
//
//   q(s) = ∀ i,r,d,i',p  (P(i,s,r,d) ∧ ¬E(i,s) ∧ C(i',s,p))
//                         → (r·d ≤ p ∧ r,d,p ≥ 0)
//
// Segment s is not a certain answer, but its measure of certainty is a
// meaningful number. The example prints:
//  * μ(q, D, s) under the literal query, atan(10/7)/2π ≈ 0.1528
//    (≈ 0.611 of the positive quadrant);
//  * ν of constraint (1) exactly as printed in the paper, which has the
//    final comparison flipped: (π/2 − atan(10/7))/2π ≈ 0.0972 (≈ 0.388 of
//    the positive quadrant — the value the paper quotes).

#include <cmath>
#include <cstdio>

#include "src/datagen/datagen.h"
#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/measure/oracle.h"

namespace {

using namespace mudb;  // NOLINT: example brevity
using logic::AtomArg;
using logic::CmpOp;
using logic::Formula;
using logic::Term;
using logic::TypedVar;

Formula CampaignQuery() {
  Formula antecedent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Rel("Products",
                             {AtomArg::BaseVar("i"), AtomArg::BaseVar("s"),
                              AtomArg::NumVar("r"), AtomArg::NumVar("d")}));
    v.push_back(Formula::Not(Formula::Rel(
        "Excluded", {AtomArg::BaseVar("i"), AtomArg::BaseVar("s")})));
    v.push_back(Formula::Rel("Competition",
                             {AtomArg::BaseVar("ip"), AtomArg::BaseVar("s"),
                              AtomArg::NumVar("p")}));
    return v;
  }());
  Formula consequent = Formula::And([] {
    std::vector<Formula> v;
    v.push_back(Formula::Cmp(Term::Var("r") * Term::Var("d"), CmpOp::kLe,
                             Term::Var("p")));
    v.push_back(Formula::Cmp(Term::Var("r"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("d"), CmpOp::kGe, Term::Const(0)));
    v.push_back(Formula::Cmp(Term::Var("p"), CmpOp::kGe, Term::Const(0)));
    return v;
  }());
  return Formula::ForallMany(
      {TypedVar{"i", model::Sort::kBase}, TypedVar{"r", model::Sort::kNum},
       TypedVar{"d", model::Sort::kNum}, TypedVar{"ip", model::Sort::kBase},
       TypedVar{"p", model::Sort::kNum}},
      Formula::Implies(std::move(antecedent), std::move(consequent)));
}

}  // namespace

int main() {
  auto campaign = datagen::MakeCampaignDatabase();
  MUDB_CHECK(campaign.ok());
  const model::Database& db = campaign->db;
  std::printf("Campaign database:\n%s\n", db.ToString().c_str());

  auto q = logic::Query::MakeWithOutput(
      CampaignQuery(), {TypedVar{"s", model::Sort::kBase}}, db);
  MUDB_CHECK(q.ok());
  std::printf("query: %s\n\n", q->ToString().c_str());

  measure::MeasureOptions opts;
  auto mu = measure::ComputeMeasure(*q, db, {model::Value::BaseConst("s")},
                                    opts);
  MUDB_CHECK(mu.ok());
  std::printf("mu(q, D, s)                = %.6f  [engine %s]\n", mu->value,
              measure::MethodToString(mu->method_used));
  std::printf("  closed form atan(10/7)/2pi = %.6f\n",
              std::atan(10.0 / 7.0) / (2 * M_PI));
  std::printf("  share of positive quadrant = %.3f\n\n", mu->value * 4);

  // Constraint (1) exactly as printed in the paper (flipped comparison).
  using poly::Polynomial;
  Polynomial alpha = Polynomial::Variable(0);
  Polynomial alpha_prime = Polynomial::Variable(1);
  constraints::RealFormula printed = constraints::RealFormula::And([&] {
    std::vector<constraints::RealFormula> v;
    v.push_back(constraints::RealFormula::Cmp(-alpha_prime,
                                              constraints::CmpOp::kLe));
    v.push_back(constraints::RealFormula::Cmp(
        Polynomial::Constant(8) - alpha, constraints::CmpOp::kLe));
    v.push_back(constraints::RealFormula::Cmp(alpha - alpha_prime.Scale(0.7),
                                              constraints::CmpOp::kLe));
    return v;
  }());
  auto nu = measure::ComputeNu(printed, opts);
  MUDB_CHECK(nu.ok());
  std::printf("nu of the paper's constraint (1) = %.6f (paper: ~0.097)\n",
              nu->value);
  std::printf("  share of positive quadrant     = %.3f (paper: ~0.388)\n\n",
              nu->value * 4);

  // With Z3 available, also report certainty certificates.
  if (measure::OracleAvailable()) {
    auto certain =
        measure::IsCertainAnswer(*q, db, {model::Value::BaseConst("s")});
    auto possible =
        measure::IsPossibleAnswer(*q, db, {model::Value::BaseConst("s")});
    if (certain.ok() && possible.ok()) {
      std::printf("certain answer: %s, possible answer: %s\n",
                  *certain ? "yes" : "no", *possible ? "yes" : "no");
    }
  }
  return 0;
}
