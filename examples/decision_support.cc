// The §9 experimental pipeline as a user would run it: generate the sales
// database, run the three decision-support SQL queries, and print every
// candidate answer with its confidence level.
//
// Usage: decision_support [num_products] [num_orders] [num_segments]
// Defaults to a laptop-friendly 20K/12K/400 (the paper used ~200K tuples;
// pass 100000 60000 500 to match).

#include <cstdio>
#include <cstdlib>

#include "src/datagen/datagen.h"
#include "src/engine/eval.h"
#include "src/measure/measure.h"
#include "src/sql/parser.h"
#include "src/util/timer.h"

namespace {

using namespace mudb;  // NOLINT: example brevity

struct NamedQuery {
  const char* name;
  const char* sql;
};

constexpr NamedQuery kQueries[] = {
    {"Competitive Advantage",
     "SELECT P.seg FROM Products P, Market M "
     "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25"},
    {"Never Knowingly Undersold",
     "SELECT P.id FROM Products P, Orders O, Market M "
     "WHERE P.seg = M.seg AND P.id = O.pr AND "
     "P.rrp * P.dis * O.q <= 0.5 * M.rrp * M.dis * O.dis LIMIT 25"},
    {"Unfair Discount",
     "SELECT O.id FROM Products P, Orders O "
     "WHERE P.id = O.pr AND O.dis >= 1.6 * P.dis * O.q LIMIT 25"},
};

}  // namespace

int main(int argc, char** argv) {
  datagen::SalesConfig config;
  config.num_products = argc > 1 ? std::atoll(argv[1]) : 20000;
  config.num_orders = argc > 2 ? std::atoll(argv[2]) : 12000;
  config.num_segments = argc > 3 ? std::atoll(argv[3]) : 400;
  config.null_rate = 0.08;

  util::WallTimer gen_timer;
  auto db = datagen::MakeSalesDatabase(config);
  MUDB_CHECK(db.ok());
  std::printf("generated %zu tuples (%zu numeric nulls) in %.2fs\n\n",
              db->TotalTuples(), db->CollectNumNullIds().size(),
              gen_timer.ElapsedSeconds());

  for (const NamedQuery& nq : kQueries) {
    std::printf("=== %s ===\n%s\n", nq.name, nq.sql);
    auto cq = sql::ParseSqlQuery(nq.sql, *db);
    if (!cq.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   cq.status().ToString().c_str());
      return 1;
    }
    util::WallTimer eval_timer;
    auto result = engine::EvaluateCq(*db, *cq);
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    double eval_s = eval_timer.ElapsedSeconds();

    util::WallTimer mc_timer;
    std::printf("%-14s %-10s %-9s %s\n", "tuple", "confidence", "witnesses",
                "engine");
    for (const engine::Candidate& c : result->candidates) {
      measure::MeasureOptions opts;
      opts.epsilon = 0.02;
      auto mu = measure::ComputeNu(c.constraint, opts);
      MUDB_CHECK(mu.ok());
      std::string tuple_text;
      for (const model::Value& v : c.output) {
        if (!tuple_text.empty()) tuple_text += ",";
        tuple_text += v.ToString();
      }
      std::printf("%-14s %-10.4f %-9zu %s%s\n", tuple_text.c_str(), mu->value,
                  c.witnesses, measure::MethodToString(mu->method_used),
                  mu->is_exact ? " (exact)" : "");
    }
    std::printf(
        "candidates: %zu (of %zu witnesses), join: %.3fs, confidence: "
        "%.3fs\n\n",
        result->candidates.size(), result->witnesses_enumerated, eval_s,
        mc_timer.ElapsedSeconds());
  }
  return 0;
}
