// A full-FO audit query (negation + universal quantification): outside the
// conjunctive fragment, so the CQ pipeline and the FPRAS do not apply — this
// is exactly the case Thm. 8.1's AFPRAS exists for.
//
// Scenario: an auditor keeps a ledger of transactions Ledger(acct, amount)
// and per-account limits Limits(acct, cap), with missing numbers in both.
// The audit passes for an account iff every one of its ledger entries is
// within the cap:
//
//   q(a) = ∀x ( Ledger(a, x) → ∃c ( Limits(a, c) ∧ x ≤ c ) )
//
// With unknown amounts/caps this is not a yes/no question; we compute the
// measure of certainty per account.

#include <cstdio>

#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/model/database.h"

int main() {
  using namespace mudb;  // NOLINT: example brevity
  using logic::AtomArg;
  using logic::CmpOp;
  using logic::Formula;
  using logic::Term;
  using logic::TypedVar;
  using model::Sort;
  using model::Value;

  model::Database db;
  MUDB_CHECK(db.CreateRelation(model::RelationSchema(
                   "Ledger", {{"acct", Sort::kBase}, {"amount", Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.CreateRelation(model::RelationSchema(
                   "Limits", {{"acct", Sort::kBase}, {"cap", Sort::kNum}}))
                 .ok());

  // acct_a: two known entries under a known cap — certainly compliant.
  MUDB_CHECK(db.Insert("Ledger", {Value::BaseConst("acct_a"),
                                  Value::NumConst(120)})
                 .ok());
  MUDB_CHECK(db.Insert("Ledger", {Value::BaseConst("acct_a"),
                                  Value::NumConst(80)})
                 .ok());
  MUDB_CHECK(db.Insert("Limits", {Value::BaseConst("acct_a"),
                                  Value::NumConst(500)})
                 .ok());
  // acct_b: one unknown entry against a known cap — compliant "half the
  // time" in the agnostic semantics.
  MUDB_CHECK(db.Insert("Ledger", {Value::BaseConst("acct_b"),
                                  db.MakeNumNull()})
                 .ok());
  MUDB_CHECK(db.Insert("Limits", {Value::BaseConst("acct_b"),
                                  Value::NumConst(300)})
                 .ok());
  // acct_c: unknown entry against an unknown cap.
  MUDB_CHECK(db.Insert("Ledger", {Value::BaseConst("acct_c"),
                                  db.MakeNumNull()})
                 .ok());
  MUDB_CHECK(db.Insert("Limits", {Value::BaseConst("acct_c"),
                                  db.MakeNumNull()})
                 .ok());
  // acct_d: a known entry exceeding its known cap — certainly in breach.
  MUDB_CHECK(db.Insert("Ledger", {Value::BaseConst("acct_d"),
                                  Value::NumConst(900)})
                 .ok());
  MUDB_CHECK(db.Insert("Limits", {Value::BaseConst("acct_d"),
                                  Value::NumConst(100)})
                 .ok());

  Formula body = Formula::Forall(
      TypedVar{"x", Sort::kNum},
      Formula::Implies(
          Formula::Rel("Ledger",
                       {AtomArg::BaseVar("a"), AtomArg::NumVar("x")}),
          Formula::Exists(
              TypedVar{"c", Sort::kNum},
              Formula::And([] {
                std::vector<Formula> v;
                v.push_back(Formula::Rel("Limits", {AtomArg::BaseVar("a"),
                                                    AtomArg::NumVar("c")}));
                v.push_back(Formula::Cmp(Term::Var("x"), CmpOp::kLe,
                                         Term::Var("c")));
                return v;
              }()))));
  auto q = logic::Query::MakeWithOutput(body, {TypedVar{"a", Sort::kBase}},
                                        db);
  MUDB_CHECK(q.ok());
  std::printf("audit query (%s): %s\n\n",
              q->formula.FragmentName().c_str(), q->ToString().c_str());

  for (const char* acct : {"acct_a", "acct_b", "acct_c", "acct_d"}) {
    measure::MeasureOptions opts;
    opts.epsilon = 0.01;
    auto mu = measure::ComputeMeasure(*q, db, {Value::BaseConst(acct)}, opts);
    MUDB_CHECK(mu.ok());
    std::printf("%s: mu = %.4f  [%s%s]\n", acct, mu->value,
                measure::MethodToString(mu->method_used),
                mu->is_exact ? ", exact" : "");
  }
  std::printf(
      "\nInterpretation: acct_a is certainly compliant, acct_d certainly in\n"
      "breach; acct_b/acct_c quantify how much of the agnostic valuation\n"
      "space keeps the account within its limit.\n");
  return 0;
}
