// Quickstart: the smallest end-to-end use of mudb.
//
// Builds a one-relation database with a numeric null, runs a query with an
// arithmetic comparison, and prints the measure of certainty μ of the
// σ_{A>B}(R) example from the paper's introduction: a tuple (⊤1, ⊤2) of two
// unknown numbers satisfies A > B "with probability 1/2".

#include <cstdio>

#include "src/logic/formula.h"
#include "src/measure/measure.h"
#include "src/model/database.h"

int main() {
  using namespace mudb;  // NOLINT: example brevity

  // Schema: R(A:num, B:num). One tuple (⊤0, ⊤1) — two unknown numbers.
  model::Database db;
  MUDB_CHECK(db.CreateRelation(model::RelationSchema(
                   "R", {{"A", model::Sort::kNum}, {"B", model::Sort::kNum}}))
                 .ok());
  MUDB_CHECK(db.Insert("R", {db.MakeNumNull(), db.MakeNumNull()}).ok());

  // Boolean query: ∃a,b R(a,b) && a > b   — the σ_{A>B} selection.
  logic::Formula f = logic::Formula::ExistsMany(
      {logic::TypedVar{"a", model::Sort::kNum},
       logic::TypedVar{"b", model::Sort::kNum}},
      logic::Formula::And([] {
        std::vector<logic::Formula> v;
        v.push_back(logic::Formula::Rel("R", {logic::AtomArg::NumVar("a"),
                                              logic::AtomArg::NumVar("b")}));
        v.push_back(logic::Formula::Cmp(logic::Term::Var("a"),
                                        logic::CmpOp::kGt,
                                        logic::Term::Var("b")));
        return v;
      }()));
  auto query = logic::Query::Make(std::move(f), db);
  MUDB_CHECK(query.ok());

  measure::MeasureOptions options;  // auto: exact engines when applicable
  auto result = measure::ComputeMeasure(*query, db, /*candidate=*/{}, options);
  if (!result.ok()) {
    std::fprintf(stderr, "measure failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query->ToString().c_str());
  std::printf("mu = %.6f  (engine: %s, exact: %s)\n", result->value,
              measure::MethodToString(result->method_used),
              result->is_exact ? "yes" : "no");
  if (result->exact_rational) {
    std::printf("as a rational: %s\n",
                result->exact_rational->ToString().c_str());
  }
  return 0;
}
