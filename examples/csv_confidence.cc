// Bring-your-own-data walkthrough: load incomplete CSV data, query it with
// SQL (including UNION), print each candidate's constraint in terms of the
// original nulls, and contrast three semantics for the same answer:
//   * agnostic        — the paper's default (any real value, §4),
//   * range-constrained — §10: "price is positive / discount in [0,1]",
//   * probabilistic   — §10: per-column distributions.

#include <cstdio>

#include "src/engine/eval.h"
#include "src/io/csv.h"
#include "src/measure/conditional.h"
#include "src/measure/measure.h"
#include "src/measure/probabilistic.h"
#include "src/sql/parser.h"

int main() {
  using namespace mudb;  // NOLINT: example brevity
  using model::RelationSchema;
  using model::Sort;

  model::Database db;
  // Tagged nulls (NULL:n1 etc.) share identity across rows of a load.
  auto products = io::LoadCsvRelation(
      &db,
      RelationSchema("Products", {{"id", Sort::kBase},
                                  {"seg", Sort::kBase},
                                  {"price", Sort::kNum},
                                  {"dis", Sort::kNum}}),
      "id,seg,price,dis\n"
      "widget,tools,10,0.8\n"
      "gadget,tools,NULL:n1,0.7\n"
      "doohickey,toys,25,NULL:n2\n");
  MUDB_CHECK(products.ok());
  auto market = io::LoadCsvRelation(
      &db,
      RelationSchema("Market", {{"seg", Sort::kBase}, {"best", Sort::kNum}}),
      "seg,best\n"
      "tools,12\n"
      "toys,NULL:n3\n");
  MUDB_CHECK(market.ok());
  std::printf("loaded %zu + %zu rows, %zu numeric nulls\n\n", *products,
              *market, db.CollectNumNullIds().size());

  const char* sql =
      "SELECT P.id FROM Products P, Market M "
      "WHERE P.seg = M.seg AND P.price * P.dis <= M.best "
      "UNION "
      "SELECT P.id FROM Products P WHERE P.price <= 5";
  auto uq = sql::ParseSqlUnionQuery(sql, db);
  MUDB_CHECK(uq.ok());
  std::printf("query:\n  %s\n\n", sql);

  auto result = engine::EvaluateUnion(db, *uq);
  MUDB_CHECK(result.ok());

  // Name grounded variables after their null marks for explanations.
  const std::vector<model::NullId>& order = result->null_order;
  auto null_name = [&](int i) {
    return "\xE2\x8A\xA4" + std::to_string(order[i]);
  };

  for (const engine::Candidate& c : result->candidates) {
    std::printf("candidate %s:\n", c.output[0].ToString().c_str());
    std::printf("  constraint: %s\n",
                constraints::FormatFormula(c.constraint, null_name).c_str());

    measure::MeasureOptions agnostic;
    agnostic.epsilon = 0.005;
    auto mu = measure::ComputeNu(c.constraint, agnostic);
    MUDB_CHECK(mu.ok());
    std::printf("  agnostic:        mu   = %.4f\n", mu->value);

    // Prices are positive; discounts live in [0, 1]. Ranges are keyed by
    // variable index via null_order.
    measure::VarRanges ranges(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      ranges[i] = measure::VarRange::AtLeast(0);  // every column nonneg
    }
    measure::AfprasOptions aopts;
    aopts.num_samples = 400000;
    util::Rng rng(7);
    auto cond = measure::ConditionalAfpras(c.constraint, ranges, aopts, rng);
    MUDB_CHECK(cond.ok());
    std::printf("  nonneg prior:    mu_C = %.4f\n", cond->estimate);

    // Distributions matching the domain: prices ~ U[5, 50], discounts ~
    // U[0.5, 1], market best ~ U[5, 50].
    std::vector<measure::Distribution> dists(
        order.size(), measure::Distribution::Uniform(5, 50));
    util::Rng rng2(7);
    auto prob =
        measure::ProbabilisticMeasure(c.constraint, dists, aopts, rng2);
    MUDB_CHECK(prob.ok());
    std::printf("  prices~U[5,50]:  P    = %.4f\n\n", prob->estimate);
  }
  return 0;
}
