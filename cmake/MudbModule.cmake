# Helper for declaring one mudb subsystem as a named static library target.
#
#   mudb_add_module(util
#     SOURCES rational.cc status.cc
#     HEADERS rational.h rng.h status.h timer.h
#     DEPS    mudb::base)
#
# creates `mudb_util` (aliased as `mudb::util`) with the repo root on its
# public include path, so sources keep using `#include "src/util/status.h"`.
# Header-only modules (no SOURCES) become INTERFACE libraries.

function(mudb_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;HEADERS;DEPS" ${ARGN})
  if(ARG_SOURCES)
    add_library(mudb_${name} STATIC ${ARG_SOURCES} ${ARG_HEADERS})
    target_include_directories(mudb_${name} PUBLIC ${PROJECT_SOURCE_DIR})
    target_compile_options(mudb_${name} PRIVATE ${MUDB_WARNING_FLAGS})
    if(ARG_DEPS)
      target_link_libraries(mudb_${name} PUBLIC ${ARG_DEPS})
    endif()
  else()
    add_library(mudb_${name} INTERFACE)
    target_include_directories(mudb_${name} INTERFACE ${PROJECT_SOURCE_DIR})
    if(ARG_DEPS)
      target_link_libraries(mudb_${name} INTERFACE ${ARG_DEPS})
    endif()
  endif()
  add_library(mudb::${name} ALIAS mudb_${name})
endfunction()

# An executable `name` built from `name.cc`, linked against the given
# targets. Shared by tests/, examples/, and bench/ so binary-wide settings
# (warning flags today; output dirs, LTO, ... later) live in one place.
function(mudb_add_binary name)
  add_executable(${name} ${name}.cc)
  target_link_libraries(${name} PRIVATE ${ARGN})
  target_compile_options(${name} PRIVATE ${MUDB_WARNING_FLAGS})
endfunction()
